(* Tests for the optimisation substrate: intervals, priority queue,
   Newton, the barrier SOCP solver, and the branch-and-bound driver. *)

open Optim
open Linalg

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  let iv = Interval.make ~lo:(-2.0) ~hi:3.0 in
  checkf 1e-12 "width" 5.0 (Interval.width iv);
  checkf 1e-12 "mid" 0.5 (Interval.mid iv);
  checkb "mem" true (Interval.mem iv 0.0);
  checkb "not mem" false (Interval.mem iv 4.0);
  checkf 1e-12 "clamp lo" (-2.0) (Interval.clamp iv (-9.0));
  checkf 1e-12 "clamp hi" 3.0 (Interval.clamp iv 9.0);
  checkb "bad bounds rejected" true
    (match Interval.make ~lo:1.0 ~hi:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_interval_sup_inf_sq () =
  (* eq. 26/27: sup/inf of t² over the interval. *)
  let straddle = Interval.make ~lo:(-2.0) ~hi:3.0 in
  checkf 1e-12 "sup straddling" 9.0 (Interval.sup_sq straddle);
  checkf 1e-12 "inf straddling" 0.0 (Interval.inf_sq straddle);
  let pos = Interval.make ~lo:1.0 ~hi:4.0 in
  checkf 1e-12 "sup positive" 16.0 (Interval.sup_sq pos);
  checkf 1e-12 "inf positive" 1.0 (Interval.inf_sq pos);
  let neg = Interval.make ~lo:(-5.0) ~hi:(-2.0) in
  checkf 1e-12 "sup negative" 25.0 (Interval.sup_sq neg);
  checkf 1e-12 "inf negative" 4.0 (Interval.inf_sq neg)

let test_interval_split_intersect () =
  let iv = Interval.make ~lo:0.0 ~hi:10.0 in
  let l, r = Interval.split iv in
  checkf 1e-12 "left hi" 5.0 (Interval.hi l);
  checkf 1e-12 "right lo" 5.0 (Interval.lo r);
  let l, r = Interval.split ~at:2.0 iv in
  checkf 1e-12 "custom cut left" 2.0 (Interval.hi l);
  checkf 1e-12 "custom cut right" 2.0 (Interval.lo r);
  (match Interval.intersect iv (Interval.make ~lo:8.0 ~hi:12.0) with
  | Some i ->
      checkf 1e-12 "intersection lo" 8.0 (Interval.lo i);
      checkf 1e-12 "intersection hi" 10.0 (Interval.hi i)
  | None -> Alcotest.fail "expected overlap");
  checkb "disjoint" true
    (Interval.intersect iv (Interval.make ~lo:11.0 ~hi:12.0) = None)

let test_interval_scale_shift () =
  let iv = Interval.make ~lo:1.0 ~hi:2.0 in
  let s = Interval.scale (-2.0) iv in
  checkf 1e-12 "scale flips" (-4.0) (Interval.lo s);
  checkf 1e-12 "scale flips hi" (-2.0) (Interval.hi s);
  let t = Interval.shift 3.0 iv in
  checkf 1e-12 "shift" 4.0 (Interval.lo t)

let test_interval_directed_rounding () =
  (* wide_add strictly contains the rounded sum on both sides. *)
  let a = Interval.point 0.1 and b = Interval.point 0.2 in
  let s = Interval.wide_add a b in
  checkb "sum lo below" true (Interval.lo s < 0.1 +. 0.2);
  checkb "sum hi above" true (Interval.hi s > 0.1 +. 0.2);
  (* wide_mul encloses every cross product of the endpoints. *)
  let m =
    Interval.wide_mul
      (Interval.make ~lo:0.1 ~hi:0.2)
      (Interval.make ~lo:(-0.3) ~hi:0.4)
  in
  List.iter
    (fun (x, y) ->
      checkb "product enclosed" true
        (Interval.lo m <= x *. y && x *. y <= Interval.hi m))
    [ (0.1, -0.3); (0.1, 0.4); (0.2, -0.3); (0.2, 0.4) ];
  (* Kahan convention: an exactly-zero factor kills an unbounded one. *)
  let z =
    Interval.wide_mul (Interval.point 0.0)
      (Interval.make ~lo:Float.neg_infinity ~hi:Float.infinity)
  in
  checkf 1e-12 "0 * [-inf,inf] lo" 0.0 (Interval.lo z);
  checkf 1e-12 "0 * [-inf,inf] hi" 0.0 (Interval.hi z);
  (* Infinite endpoints are preserved, never stepped inward or to NaN. *)
  let u = Interval.wide (Interval.make ~lo:Float.neg_infinity ~hi:Float.infinity) in
  checkb "wide keeps -inf" true (Interval.lo u = Float.neg_infinity);
  checkb "wide keeps +inf" true (Interval.hi u = Float.infinity);
  (* inf - inf is NaN: the operation must refuse, not return a "bound". *)
  checkb "inf - inf raises" true
    (match Interval.wide_sub (Interval.point Float.infinity)
             (Interval.point Float.infinity) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  checki "length" 5 (Pqueue.length q);
  let popped = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (k, _) ->
        popped := k :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0)))
    "ascending order" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !popped)

let test_pqueue_filter () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k ()) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Pqueue.filter_in_place q (fun k () -> k < 3.5);
  checki "filtered length" 3 (Pqueue.length q);
  checkf 1e-12 "min still right" 1.0 (Pqueue.min_key q)

let test_pqueue_empty () =
  let q = Pqueue.create () in
  checkb "empty" true (Pqueue.is_empty q);
  checkb "pop none" true (Pqueue.pop q = None);
  checkf 1e-12 "min of empty is inf" Float.infinity (Pqueue.min_key q)

let test_pqueue_drop_worst () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.push q k (int_of_float k))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  (* Within budget: nothing dropped, infinity folds harmlessly. *)
  let d, m = Pqueue.drop_worst q ~keep:10 in
  checki "no drop" 0 d;
  checkb "no-drop bound is inf" true (m = Float.infinity);
  (* Over budget: the two largest keys go, and the smallest dropped key
     is reported (the value soundness folds into the gap). *)
  let d, m = Pqueue.drop_worst q ~keep:3 in
  checki "dropped count" 2 d;
  checkf 1e-12 "min dropped key" 4.0 m;
  checki "kept" 3 (Pqueue.length q);
  let popped = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (k, _) ->
        popped := k :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0)))
    "survivors are the best, in order" [ 1.0; 2.0; 3.0 ] (List.rev !popped)

let test_pqueue_filter_releases_dropped () =
  (* [filter_in_place] must clear dead slots so dropped payloads become
     collectable — in the solver those payloads are whole search regions,
     and keeping them pinned by the backing array is a leak.  Observed
     through finalisers on the dropped boxes. *)
  let released = ref 0 in
  let q = Pqueue.create () in
  let fill () =
    for i = 0 to 63 do
      let v = ref i in
      Gc.finalise (fun _ -> incr released) v;
      Pqueue.push q (float_of_int i) v
    done
  in
  fill ();
  Pqueue.filter_in_place q (fun k _ -> k < 8.0);
  Gc.full_major ();
  Gc.full_major ();
  checki "filtered length" 8 (Pqueue.length q);
  checkb "dropped values were collected" true (!released >= 40);
  let popped = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (k, v) ->
        checkf 1e-12 "payload matches key" k (float_of_int !v);
        popped := k :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0)))
    "survivors ascending"
    [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0 ]
    (List.rev !popped)

let drain_keys q =
  let rec go acc =
    match Pqueue.pop q with
    | Some (k, _) -> go (k :: acc)
    | None -> List.rev acc
  in
  go []

let test_pqueue_steal_half () =
  let src = Pqueue.create () and dst = Pqueue.create () in
  List.iter
    (fun k -> Pqueue.push src k (int_of_float k))
    [ 7.0; 3.0; 9.0; 1.0; 5.0; 8.0; 2.0 ];
  let moved = Pqueue.steal_half src dst in
  checki "moves ceil(n/2)" 4 moved;
  checki "dst length" 4 (Pqueue.length dst);
  checki "src length" 3 (Pqueue.length src);
  (* The transfer must take exactly the smallest keys — a thief that
     walks away with the worst half defeats best-first search — and
     both heaps must still pop in ascending order afterwards. *)
  Alcotest.(check (list (float 0.0)))
    "dst got the smallest keys" [ 1.0; 2.0; 3.0; 5.0 ] (drain_keys dst);
  Alcotest.(check (list (float 0.0)))
    "src kept the rest in order" [ 7.0; 8.0; 9.0 ] (drain_keys src)

let test_pqueue_steal_half_edges () =
  let src = Pqueue.create () and dst = Pqueue.create () in
  checki "empty source steals nothing" 0 (Pqueue.steal_half src dst);
  checkb "dst untouched" true (Pqueue.is_empty dst);
  Pqueue.push src 4.2 0;
  checki "a single entry moves" 1 (Pqueue.steal_half src dst);
  checkb "source drained" true (Pqueue.is_empty src);
  checkf 1e-12 "entry arrived" 4.2 (Pqueue.min_key dst)

let prop_pqueue_steal_half =
  QCheck.Test.make ~name:"steal_half takes exactly the smallest half"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 0 60) (float_range (-50.0) 50.0))
    (fun keys ->
      let src = Pqueue.create () and dst = Pqueue.create () in
      List.iter (fun k -> Pqueue.push src k k) keys;
      let moved = Pqueue.steal_half src dst in
      let stolen = drain_keys dst and kept = drain_keys src in
      moved = (List.length keys + 1) / 2
      && stolen @ kept = List.sort compare keys)

let prop_pqueue_filter_heap =
  QCheck.Test.make ~name:"filter_in_place preserves heap order" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 60) (float_range (-50.0) 50.0))
        (float_range (-50.0) 50.0))
    (fun (keys, cut) ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.push q k k) keys;
      Pqueue.filter_in_place q (fun k _ -> k <= cut);
      let expected =
        List.sort compare (List.filter (fun k -> k <= cut) keys)
      in
      let rec drain acc =
        match Pqueue.pop q with
        | Some (k, v) -> k = v && drain (k :: acc)
        | None -> List.rev acc = expected
      in
      drain [])

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (float_range (-100.0) 100.0))
    (fun keys ->
      let q = Pqueue.create () in
      List.iter (fun k -> Pqueue.push q k k) keys;
      let rec drain acc =
        match Pqueue.pop q with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      List.sort compare keys = out)

(* ------------------------------------------------------------------ *)
(* Newton                                                              *)
(* ------------------------------------------------------------------ *)

let quadratic_oracle center : Newton.oracle =
 fun x ->
  (* f(x) = 1/2 ||x - c||², minimum at c *)
  let d = Vec.sub x center in
  Some (0.5 *. Vec.dot d d, d, Mat.identity (Vec.dim x))

let test_newton_quadratic () =
  let c = [| 1.0; -2.0; 0.5 |] in
  let r = Newton.minimize (quadratic_oracle c) (Vec.zeros 3) in
  checkb "converged" true (r.Newton.status = Newton.Converged);
  checkb "found center" true (Vec.approx_equal ~tol:1e-8 c r.Newton.x)

let test_newton_log_barrier_1d () =
  (* f(x) = x - log(1 - x), domain x < 1; f' = 1 + 1/(1-x) > 0 always:
     decreasing x helps; but domain also requires... actually minimise
     f(x) = -log(x) - log(1 - x): minimum at x = 1/2. *)
  let oracle : Newton.oracle =
   fun x ->
    let v = x.(0) in
    if v <= 0.0 || v >= 1.0 then None
    else
      Some
        ( -.log v -. log (1.0 -. v),
          [| (-1.0 /. v) +. (1.0 /. (1.0 -. v)) |],
          [| [| (1.0 /. (v *. v)) +. (1.0 /. ((1.0 -. v) *. (1.0 -. v))) |] |]
        )
  in
  let r = Newton.minimize oracle [| 0.9 |] in
  checkb "converged" true (r.Newton.status = Newton.Converged);
  checkf 1e-7 "minimum at 1/2" 0.5 r.Newton.x.(0)

let test_newton_rejects_infeasible_start () =
  let oracle : Newton.oracle =
   fun x -> if x.(0) <= 0.0 then None else Some (x.(0), [| 1.0 |], [| [| 1e-9 |] |])
  in
  checkb "raises" true
    (match Newton.minimize oracle [| -1.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_newton_nan_decrement_is_diverged () =
  (* Regression: a NaN gradient makes the Newton decrement NaN, and
     [!dec <= tol] is false for NaN, so the old code fell through to the
     line search with a NaN direction and eventually reported the start
     point as Converged.  It must be surfaced as Diverged instead. *)
  let calls = ref 0 in
  let oracle : Newton.oracle =
   fun x ->
    incr calls;
    let g = if !calls = 1 then [| Float.nan |] else [| x.(0) |] in
    Some (0.5 *. x.(0) *. x.(0), g, [| [| 1.0 |] |])
  in
  let r = Newton.minimize oracle [| 3.0 |] in
  checkb "status is Diverged" true (r.Newton.status = Newton.Diverged);
  checkb "decrement is NaN" true (Float.is_nan r.Newton.decrement);
  checkf 1e-12 "last finite iterate returned" 3.0 r.Newton.x.(0)

(* ------------------------------------------------------------------ *)
(* Socp                                                                *)
(* ------------------------------------------------------------------ *)

let test_socp_box_qp () =
  (* min (x-3)² + (y+1)² s.t. -1 <= x,y <= 1: optimum at (1,-1)...
     but (y+1)² pushes y to -1 which is on the boundary. Interior-point
     converges to the boundary within gap tolerance. *)
  let p = Mat.scale 2.0 (Mat.identity 2) in
  let q = [| -6.0; 2.0 |] in
  let lins = Socp.box_constraints [| -1.0; -1.0 |] [| 1.0; 1.0 |] in
  let problem = Socp.problem ~p ~q ~lins 2 in
  let sol = Socp.solve problem ~start:[| 0.0; 0.0 |] in
  checkf 1e-3 "x at bound" 1.0 sol.Socp.x.(0);
  checkf 1e-3 "y at bound" (-1.0) sol.Socp.x.(1);
  checkb "feasible" true (Socp.is_feasible ~tol:1e-7 problem sol.Socp.x)

let test_socp_unconstrained () =
  let p = Mat.scale 2.0 (Mat.identity 2) in
  let q = [| -2.0; -4.0 |] in
  let problem = Socp.problem ~p ~q 2 in
  let sol = Socp.solve problem ~start:[| 0.0; 0.0 |] in
  checkb "analytic optimum" true
    (Vec.approx_equal ~tol:1e-6 [| 1.0; 2.0 |] sol.Socp.x)

let test_socp_cone_projection () =
  (* min ||x - c||² s.t. ||x|| <= 1 with c outside the ball: optimum is
     the radial projection c/||c||. *)
  let c = [| 2.0; 2.0 |] in
  let p = Mat.scale 2.0 (Mat.identity 2) in
  let q = Vec.scale (-2.0) c in
  let cone =
    { Socp.l = Mat.identity 2; g = Vec.zeros 2; c = Vec.zeros 2; d = 1.0 }
  in
  let problem = Socp.problem ~p ~q ~socs:[ cone ] 2 in
  let sol = Socp.solve problem ~start:[| 0.0; 0.0 |] in
  let expected = Vec.scale (1.0 /. Vec.norm2 c) c in
  checkb "radial projection" true
    (Vec.approx_equal ~tol:1e-4 expected sol.Socp.x)

let test_socp_lower_bound_certificate () =
  (* The solver's objective minus gap must lower-bound the true optimum:
     check against the analytic cone projection value. *)
  let c = [| 3.0; 0.0 |] in
  let p = Mat.scale 2.0 (Mat.identity 2) in
  let q = Vec.scale (-2.0) c in
  let cone =
    { Socp.l = Mat.identity 2; g = Vec.zeros 2; c = Vec.zeros 2; d = 1.0 }
  in
  let problem = Socp.problem ~p ~q ~socs:[ cone ] 2 in
  let sol = Socp.solve problem ~start:[| 0.0; 0.0 |] in
  (* true optimum of x² - 6x at x = 1 (cone boundary): 1 - 6 = -5 *)
  let true_min = -5.0 in
  checkb "obj >= true min" true (sol.Socp.objective >= true_min -. 1e-9);
  checkb "obj - gap <= true min" true
    (sol.Socp.objective -. sol.Socp.gap_bound <= true_min +. 1e-6)

let test_socp_certificate_analytic () =
  (* Independent dual certificate on the analytic cone projection: the
     verified dual value must lower-bound the true optimum (-5) and,
     from a healthy solve, sit close beneath it. *)
  let c = [| 3.0; 0.0 |] in
  let p = Mat.scale 2.0 (Mat.identity 2) in
  let q = Vec.scale (-2.0) c in
  let cone =
    { Socp.l = Mat.identity 2; g = Vec.zeros 2; c = Vec.zeros 2; d = 1.0 }
  in
  (* A box around the ball: the residual-absorption step needs bounded
     coordinates (every LDA-FP relaxation has its weight box). *)
  let lins = Socp.box_constraints [| -2.0; -2.0 |] [| 2.0; 2.0 |] in
  let problem = Socp.problem ~p ~q ~lins ~socs:[ cone ] 2 in
  let sol = Socp.solve problem ~start:[| 0.0; 0.0 |] in
  let true_min = -5.0 in
  match Socp.certify_lower_bound problem sol with
  | Error f -> Alcotest.fail (Socp.describe_cert_failure f)
  | Ok cert ->
      checkb "dual value is a true lower bound" true
        (cert.Socp.dual_value <= true_min +. 1e-9);
      checkb "and a tight one" true (cert.Socp.dual_value >= true_min -. 1e-2);
      checkf 1e-9 "slack is objective - dual_value"
        (sol.Socp.objective -. cert.Socp.dual_value)
        cert.Socp.slack

let test_socp_certificate_survives_corrupt_primal () =
  (* The regression the certificate layer exists for: a corrupted primal
     solve.  The trusting formula [objective - 2 gap_bound] follows the
     corruption upward and would let B&B prune the optimum; the
     certificate either still reports a true lower bound or refuses
     outright — it never follows the lie. *)
  let c = [| 3.0; 0.0 |] in
  let p = Mat.scale 2.0 (Mat.identity 2) in
  let q = Vec.scale (-2.0) c in
  let cone =
    { Socp.l = Mat.identity 2; g = Vec.zeros 2; c = Vec.zeros 2; d = 1.0 }
  in
  let lins = Socp.box_constraints [| -2.0; -2.0 |] [| 2.0; 2.0 |] in
  let problem = Socp.problem ~p ~q ~lins ~socs:[ cone ] 2 in
  let sol = Socp.solve problem ~start:[| 0.0; 0.0 |] in
  let true_min = -5.0 in
  (* Corrupt the reported objective: the trusting bound overstates. *)
  let lied = { sol with Socp.objective = sol.Socp.objective +. 10.0 } in
  checkb "trusting bound follows the corruption" true
    (lied.Socp.objective -. (2.0 *. lied.Socp.gap_bound) > true_min +. 1.0);
  (match Socp.certify_lower_bound problem lied with
  | Ok cert ->
      checkb "certified bound ignores the lie" true
        (cert.Socp.dual_value <= true_min +. 1e-9)
  | Error (Socp.Cert_gap_excessive _) -> () (* refusing is equally sound *)
  | Error f -> Alcotest.fail (Socp.describe_cert_failure f));
  (* Corrupt the iterate itself: multipliers extracted from a garbage
     point still get repaired onto the dual-feasible set, so any Ok
     verdict is still a true bound (just a loose one). *)
  let garbage = { sol with Socp.x = [| 7.0; -3.0 |] } in
  match Socp.certify_lower_bound ~max_rel_slack:1e6 problem garbage with
  | Ok cert ->
      checkb "garbage-point certificate still valid" true
        (cert.Socp.dual_value <= true_min +. 1e-9)
  | Error (Socp.Cert_gap_excessive _) -> ()
  | Error f -> Alcotest.fail (Socp.describe_cert_failure f)

(* The certificate property: on random box QPs with a cone, the repaired
   dual value never exceeds a high-accuracy reference solve of the same
   problem (weak duality made checkable).  The reference objective
   upper-bounds the true optimum, so [dual_value <= reference] is the
   observable half of [dual_value <= true optimum]. *)
let prop_cert_lower_bounds_reference =
  QCheck.Test.make
    ~name:"repaired dual certificate lower-bounds a reference solve"
    ~count:40
    QCheck.(pair (int_range 1 6) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      let base =
        Mat.init n n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      let p =
        Mat.add_scaled_identity (0.5 *. float_of_int n)
          (Mat.mul base (Mat.transpose base))
      in
      let q = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-3.0) ~hi:3.0) in
      let lo = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:(-0.1)) in
      let hi = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:0.1 ~hi:2.0) in
      let with_cone = Stats.Rng.uniform rng ~lo:0.0 ~hi:1.0 < 0.5 in
      let socs =
        if with_cone then
          let radius = Stats.Rng.uniform rng ~lo:1.0 ~hi:4.0 in
          [ { Socp.l = Mat.identity n; g = Vec.zeros n; c = Vec.zeros n;
              d = radius } ]
        else []
      in
      let pb = Socp.problem ~p ~q ~lins:(Socp.box_constraints lo hi) ~socs n in
      match Socp.solve_auto pb ~start:(Vec.zeros n) with
      | None -> false (* origin is always feasible here *)
      | Some sol -> (
          let reference =
            Socp.solve
              ~params:{ Socp.default_params with Socp.gap_tol = 1e-10 }
              pb ~start:sol.Socp.x
          in
          match Socp.certify_lower_bound pb sol with
          | Error f ->
              QCheck.Test.fail_reportf "certificate failed: %s"
                (Socp.describe_cert_failure f)
          | Ok cert ->
              if
                cert.Socp.dual_value
                > reference.Socp.objective
                  +. (1e-9 *. (1.0 +. Float.abs reference.Socp.objective))
              then
                QCheck.Test.fail_reportf
                  "dual value %.12g above reference optimum %.12g"
                  cert.Socp.dual_value reference.Socp.objective
              else true))

let test_socp_rejects_infeasible_start () =
  let lins = Socp.box_constraints [| 0.0 |] [| 1.0 |] in
  let problem = Socp.problem ~lins 1 in
  checkb "raises on outside start" true
    (match Socp.solve problem ~start:[| 5.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_socp_boundary_start_nudged () =
  (* A start exactly on the constraint boundary (violation 0, within
     [start_margin]) used to raise; it must now be nudged into the
     interior by phase-I and solved.  min (x-3)² over [0, 1] from the
     boundary start x = 1: optimum stays at the boundary. *)
  let p = Mat.scale 2.0 (Mat.identity 1) in
  let q = [| -6.0 |] in
  let lins = Socp.box_constraints [| 0.0 |] [| 1.0 |] in
  let problem = Socp.problem ~p ~q ~lins 1 in
  let sol = Socp.solve problem ~start:[| 1.0 |] in
  checkf 1e-3 "optimum at the bound" 1.0 sol.Socp.x.(0);
  checkb "feasible" true (Socp.is_feasible ~tol:1e-7 problem sol.Socp.x);
  (* Roundoff past the boundary is tolerated too... *)
  let sol' = Socp.solve problem ~start:[| 1.0 +. 1e-9 |] in
  checkf 1e-3 "roundoff-infeasible start solved" 1.0 sol'.Socp.x.(0);
  (* ...but a genuinely infeasible start is still rejected. *)
  checkb "far start still raises" true
    (match Socp.solve problem ~start:[| 5.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_phase1_finds_feasible () =
  (* Feasible region: a small box away from the start. *)
  let lins = Socp.box_constraints [| 4.0; 4.0 |] [| 5.0; 5.0 |] in
  let problem = Socp.problem ~lins 2 in
  match Socp.find_strictly_feasible problem ~start:[| 0.0; 0.0 |] with
  | Socp.Strictly_feasible x ->
      checkb "strictly inside" true (Socp.max_violation problem x < 0.0)
  | _ -> Alcotest.fail "expected feasible point"

let test_phase1_detects_infeasible () =
  (* x <= 0 and x >= 1 simultaneously: infeasible by margin 1/2. *)
  let lins =
    [
      { Socp.a = [| 1.0 |]; b = 0.0 };
      { Socp.a = [| -1.0 |]; b = -1.0 };
    ]
  in
  let problem = Socp.problem ~lins 1 in
  match Socp.find_strictly_feasible problem ~start:[| 0.5 |] with
  | Socp.Infeasible margin -> checkb "positive margin" true (margin > 0.0)
  | Socp.Strictly_feasible _ -> Alcotest.fail "claimed feasible"
  | Socp.Unknown _ -> Alcotest.fail "should certify infeasibility"

let test_solve_auto_pipeline () =
  (* min x² over [3, 5]: phase-1 must move into the box first. *)
  let p = Mat.scale 2.0 (Mat.identity 1) in
  let lins = Socp.box_constraints [| 3.0 |] [| 5.0 |] in
  let problem = Socp.problem ~p ~lins 1 in
  match Socp.solve_auto problem ~start:[| 0.0 |] with
  | Some sol -> checkf 1e-3 "optimum at lower bound" 3.0 sol.Socp.x.(0)
  | None -> Alcotest.fail "expected solution"

let test_socp_dimension_checks () =
  checkb "bad P" true
    (match Socp.problem ~p:(Mat.identity 3) 2 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad lin" true
    (match Socp.problem ~lins:[ { Socp.a = [| 1.0 |]; b = 0.0 } ] 2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Bnb                                                                 *)
(* ------------------------------------------------------------------ *)

(* Toy problem: minimise a convex quadratic over integers in a range,
   regions are integer intervals, bound is the continuous minimum. *)
let integer_quadratic_oracle target =
  let cost x = (x -. target) ** 2.0 in
  {
    Bnb.bound =
      (fun (lo, hi) ->
        if lo > hi then None
        else
          let cont = Float.max (float_of_int lo) (Float.min (float_of_int hi) target) in
          let lower = cost cont in
          let cand_x = int_of_float (Float.round cont) in
          let cand_x = max lo (min hi cand_x) in
          Some { Bnb.lower; candidate = Some (cand_x, cost (float_of_int cand_x)) });
    branch =
      (fun (lo, hi) ->
        if lo >= hi then []
        else
          (* Floor division: truncating [/] on a negative two-element
             interval returns the upper endpoint, re-creating the parent
             as its own child forever. *)
          let mid = (lo + hi) asr 1 in
          [ (lo, mid); (mid + 1, hi) ]);
  }

let test_bnb_finds_integer_optimum () =
  let r = Bnb.minimize (integer_quadratic_oracle 7.3) (-100, 100) in
  (match r.Bnb.best with
  | Some (x, c) ->
      checki "optimal integer" 7 x;
      checkf 1e-12 "optimal cost" 0.09 c
  | None -> Alcotest.fail "no solution");
  checkb "terminated ok" true
    (match r.Bnb.stop_reason with
    | Bnb.Proved_optimal | Bnb.Gap_reached -> true
    | _ -> false)

let test_bnb_exhaustive_agreement () =
  (* Against brute force on many random targets. *)
  let rng = Stats.Rng.create 99 in
  for _ = 1 to 50 do
    let target = Stats.Rng.uniform rng ~lo:(-20.0) ~hi:20.0 in
    let r = Bnb.minimize (integer_quadratic_oracle target) (-25, 25) in
    let brute = Float.round target in
    let brute = Float.max (-25.0) (Float.min 25.0 brute) in
    match r.Bnb.best with
    | Some (x, _) ->
        checkb
          (Printf.sprintf "agrees with brute force (target %g)" target)
          true
          (Float.abs (float_of_int x -. brute) <= 1.0
          && (float_of_int x -. target) ** 2.0
             <= ((brute -. target) ** 2.0) +. 1e-9)
    | None -> Alcotest.fail "no solution"
  done

let test_bnb_node_budget () =
  (* A deliberately weak bound (always 0 on non-atomic regions) so the
     search cannot prune and must hit the node budget. *)
  let weak_oracle =
    {
      Bnb.bound =
        (fun (lo, hi) ->
          if lo > hi then None
          else if lo = hi then
            let c = (float_of_int lo -. 0.4) ** 2.0 in
            Some { Bnb.lower = c; candidate = Some (lo, c) }
          else
            Some
              { Bnb.lower = 0.0;
                candidate = Some (hi, (float_of_int hi -. 0.4) ** 2.0) });
      branch =
        (fun (lo, hi) ->
          if lo >= hi then []
          else
            let mid = (lo + hi) asr 1 in
            [ (lo, mid); (mid + 1, hi) ]);
    }
  in
  let params =
    { Bnb.default_params with max_nodes = 3; rel_gap = 0.0; abs_gap = 0.0 }
  in
  let r = Bnb.minimize ~params weak_oracle (-1000, 1000) in
  checkb "stopped on budget" true (r.Bnb.stop_reason = Bnb.Node_budget);
  checkb "still has incumbent" true (r.Bnb.best <> None);
  checkb "bound <= incumbent" true
    (match r.Bnb.best with
    | Some (_, c) -> r.Bnb.bound <= c +. 1e-12
    | None -> false);
  checkb "children counted" true (r.Bnb.stats.Bnb.children_generated > 0)

let test_bnb_infeasible_root () =
  let oracle =
    { Bnb.bound = (fun _ -> None); branch = (fun _ -> []) }
  in
  let r = Bnb.minimize oracle () in
  checkb "no solution" true (r.Bnb.best = None);
  checkb "proved" true (r.Bnb.stop_reason = Bnb.Proved_optimal)

let test_bnb_pruning_respects_incumbent () =
  (* A bound oracle that counts calls: once the exact optimum is the
     incumbent, sibling regions with worse bounds must not be explored. *)
  let calls = ref 0 in
  let oracle =
    {
      Bnb.bound =
        (fun (lo, hi) ->
          incr calls;
          if lo > hi then None
          else
            (* cost = x; lower bound = lo; candidate = lo *)
            Some { Bnb.lower = float_of_int lo;
                   candidate = Some (lo, float_of_int lo) });
      branch =
        (fun (lo, hi) ->
          if lo >= hi then []
          else
            let mid = (lo + hi) asr 1 in
            [ (lo, mid); (mid + 1, hi) ]);
    }
  in
  let r = Bnb.minimize oracle (0, 1 lsl 16) in
  (match r.Bnb.best with
  | Some (x, _) -> checki "found 0" 0 x
  | None -> Alcotest.fail "no solution");
  checkb "explored few nodes" true (!calls < 50)

let test_bnb_wall_clock_time_limit () =
  (* The bound oracle sleeps, burning wall time but almost no CPU time:
     [time_limit] must trip on the wall clock.  With the old [Sys.time]
     measurement the clock barely advanced during the sleeps and this
     search ran all the way to its node budget. *)
  let oracle =
    {
      Bnb.bound =
        (fun _ ->
          Unix.sleepf 0.02;
          Some { Bnb.lower = 0.0; candidate = Some ((), 1.0) });
      branch = (fun depth -> [ depth + 1 ]);
    }
  in
  let params =
    {
      Bnb.default_params with
      max_nodes = 25;
      rel_gap = 0.0;
      abs_gap = 0.0;
      time_limit = Some 0.05;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Bnb.minimize ~params oracle 0 in
  let elapsed = Unix.gettimeofday () -. t0 in
  checkb "stopped on the wall clock" true
    (r.Bnb.stop_reason = Bnb.Time_budget);
  checkb "stopped promptly" true (elapsed < 0.45)

let test_bnb_parallel_matches_sequential () =
  let seq = Bnb.minimize (integer_quadratic_oracle 7.3) (-100, 100) in
  let seq_cost =
    match seq.Bnb.best with Some (_, c) -> c | None -> Float.nan
  in
  List.iter
    (fun domains ->
      let r =
        Bnb.minimize_parallel ~domains (integer_quadratic_oracle 7.3)
          (-100, 100)
      in
      (match r.Bnb.best with
      | Some (x, c) ->
          checki (Printf.sprintf "optimum on %d domains" domains) 7 x;
          checkf 1e-12 (Printf.sprintf "cost on %d domains" domains) seq_cost c
      | None -> Alcotest.fail "no solution");
      checki "domains_used" domains r.Bnb.stats.Bnb.domains_used;
      checkb "terminated ok" true
        (match r.Bnb.stop_reason with
        | Bnb.Proved_optimal | Bnb.Gap_reached -> true
        | _ -> false))
    [ 2; 4 ]

let test_bnb_domains_one_identity () =
  (* domains = 1 must route to the sequential driver: identical result,
     node count and statistics, not merely an equivalent incumbent. *)
  let a = Bnb.minimize (integer_quadratic_oracle 3.7) (-50, 50) in
  let b =
    Bnb.minimize_parallel ~domains:1 (integer_quadratic_oracle 3.7) (-50, 50)
  in
  checkb "same best" true (a.Bnb.best = b.Bnb.best);
  checki "same nodes" a.Bnb.nodes_explored b.Bnb.nodes_explored;
  checkb "same stop reason" true (a.Bnb.stop_reason = b.Bnb.stop_reason);
  (* oracle_seconds and wall_seconds are wall-clock and differ run to
     run; every counting field must still be identical. *)
  let scrub s =
    { s with Bnb.oracle_seconds = 0.0; domain_oracle_seconds = [||];
      wall_seconds = 0.0 }
  in
  checkb "same stats" true (scrub a.Bnb.stats = scrub b.Bnb.stats);
  checki "one domain reported" 1 a.Bnb.stats.Bnb.domains_used;
  checkf 1e-12 "same bound" a.Bnb.bound b.Bnb.bound

let test_pqueue_drain () =
  let q = Pqueue.create () in
  List.iter
    (fun k -> Pqueue.push q k (int_of_float k))
    [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let seen = ref [] in
  Pqueue.drain q (fun rank k v -> seen := (rank, k, v) :: !seen);
  Alcotest.(check (list (triple int (float 0.0) int)))
    "ascending key order with dense ranks"
    [ (0, 1.0, 1); (1, 2.0, 2); (2, 3.0, 3); (3, 4.0, 4); (4, 5.0, 5) ]
    (List.rev !seen);
  checkb "empty after drain" true (Pqueue.is_empty q);
  Pqueue.drain q (fun _ _ _ -> Alcotest.fail "drain of empty heap called f")

(* ------------------------------------------------------------------ *)
(* Work_deque                                                          *)
(* ------------------------------------------------------------------ *)

(* Shard ownership in the scheduler is a calling convention, not thread
   identity, so one thread can play every worker role in turn and
   exercise the whole protocol deterministically. *)

let test_work_deque_basic () =
  let d = Work_deque.create ~workers:2 () in
  checki "workers" 2 (Work_deque.workers d);
  checkb "fresh deque is drained" true (Work_deque.drained d);
  checkf 1e-12 "empty frontier bound" Float.infinity
    (Work_deque.frontier_bound d);
  Work_deque.push d ~worker:0 3.0 "b";
  Work_deque.push d ~worker:0 1.0 "a";
  checki "live counts queued work" 2 (Work_deque.live d);
  checkf 1e-12 "frontier bound is the min key" 1.0
    (Work_deque.frontier_bound d);
  (match Work_deque.take d ~worker:0 with
  | Some (k, v) ->
      checkf 1e-12 "takes the best key" 1.0 k;
      Alcotest.(check string) "takes the best value" "a" v
  | None -> Alcotest.fail "expected work");
  checki "in-flight work is still live" 2 (Work_deque.live d);
  checkf 1e-12 "bound covers the in-flight node" 1.0
    (Work_deque.frontier_bound d);
  Work_deque.release d ~worker:0;
  checki "release retires one node" 1 (Work_deque.live d);
  (* Mirror publication is batched: after a release the bound mirror may
     lag (stale low — conservative), and [sync_mirrors] makes it exact. *)
  checkb "stale mirror stays conservative" true
    (Work_deque.frontier_bound d <= 3.0);
  Work_deque.sync_mirrors d;
  checkf 1e-12 "bound exact after sync" 3.0 (Work_deque.frontier_bound d);
  checkb "invalid worker count rejected" true
    (match Work_deque.create ~workers:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_work_deque_steal_ordering () =
  let d = Work_deque.create ~workers:2 () in
  List.iter
    (fun k -> Work_deque.push d ~worker:0 k (int_of_float k))
    [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  (match Work_deque.try_steal d ~thief:1 with
  | Some (k, _) -> checkf 1e-12 "thief gets the global minimum" 1.0 k
  | None -> Alcotest.fail "steal should find worker 0's shard");
  checki "one steal recorded" 1 (Work_deque.steals d);
  checki "ceil(5/2) nodes moved" 3 (Work_deque.stolen_nodes d);
  checki "nothing lost in transit" 5 (Work_deque.live d);
  Work_deque.release d ~worker:1;
  let drain worker =
    let rec go acc =
      match Work_deque.take d ~worker with
      | Some (k, _) ->
          Work_deque.release d ~worker;
          go (k :: acc)
      | None -> List.rev acc
    in
    go []
  in
  Alcotest.(check (list (float 0.0)))
    "surplus of the stolen half queued on the thief" [ 2.0; 3.0 ] (drain 1);
  Alcotest.(check (list (float 0.0)))
    "victim kept the larger half" [ 4.0; 5.0 ] (drain 0);
  checkb "exhausted after the drain" true (Work_deque.drained d);
  checkb "nothing left to steal" true (Work_deque.try_steal d ~thief:1 = None)

let test_work_deque_mirror_conservative () =
  (* Batched mirror publication must never report a frontier bound
     tighter (greater) than the true minimum over live work: drive an
     adversarial push/take/steal/release mix against a shadow model of
     the live key multiset and check the one-sided staleness invariant
     after every operation, then exactness after [sync_mirrors] at
     quiescence. *)
  let d = Work_deque.create ~workers:2 () in
  let busy = [| None; None |] in
  let live = ref [] in
  let remove_one k l =
    let rec go acc = function
      | [] -> List.rev acc
      | x :: tl -> if x = k then List.rev_append acc tl else go (x :: acc) tl
    in
    go [] l
  in
  let true_min () = List.fold_left Float.min Float.infinity !live in
  (* Deterministic LCG so a failure reproduces. *)
  let state = ref 12345 in
  let rand () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int (!state mod 1000) /. 10.0
  in
  for i = 0 to 499 do
    let w = i land 1 in
    (match i mod 5 with
    | 0 | 1 ->
        let k = rand () in
        Work_deque.push d ~worker:w k ();
        live := k :: !live
    | 2 -> (
        if busy.(w) = None then
          match Work_deque.take d ~worker:w with
          | Some (k, ()) -> busy.(w) <- Some k
          | None -> ())
    | 3 -> (
        if busy.(w) = None then
          match Work_deque.try_steal d ~thief:w with
          | Some (k, ()) -> busy.(w) <- Some k
          | None -> ())
    | _ -> (
        match busy.(w) with
        | Some k ->
            Work_deque.release d ~worker:w;
            live := remove_one k !live;
            busy.(w) <- None
        | None -> ()));
    if not (Work_deque.frontier_bound d <= true_min ()) then
      Alcotest.failf "mirror overshot at step %d: bound %g > true min %g" i
        (Work_deque.frontier_bound d)
        (true_min ())
  done;
  Array.iteri
    (fun w b ->
      match b with
      | Some k ->
          Work_deque.release d ~worker:w;
          live := remove_one k !live;
          busy.(w) <- None
      | None -> ())
    busy;
  Work_deque.sync_mirrors d;
  checkf 1e-12 "exact after sync at quiescence" (true_min ())
    (Work_deque.frontier_bound d);
  checki "shadow and deque agree on live count" (List.length !live)
    (Work_deque.live d)

let test_work_deque_last_node_stolen () =
  (* The termination race the live count exists for: worker 1 steals
     worker 0's only node, so every shard heap is empty while the search
     space is not exhausted.  Declaring the drain here would abandon the
     stolen node's whole subtree. *)
  let d = Work_deque.create ~workers:2 () in
  Work_deque.push d ~worker:0 1.0 ();
  (match Work_deque.try_steal d ~thief:1 with
  | Some (k, ()) -> checkf 1e-12 "stole the last node" 1.0 k
  | None -> Alcotest.fail "expected to steal the only node");
  checkb "owner's shard is empty" true (Work_deque.take d ~worker:0 = None);
  checkb "not drained: the node is in flight on the thief" false
    (Work_deque.drained d);
  checki "snapshot still sees the in-flight node" 1
    (List.length (Work_deque.snapshot d));
  (* The thief expands it: the child must be pushed before the parent is
     released, so live never dips to zero mid-expansion. *)
  Work_deque.push d ~worker:1 2.0 ();
  Work_deque.release d ~worker:1;
  checkb "child keeps the search alive" false (Work_deque.drained d);
  (match Work_deque.take d ~worker:1 with
  | Some (k, ()) -> checkf 1e-12 "child is takeable" 2.0 k
  | None -> Alcotest.fail "child should be queued on the thief");
  Work_deque.release d ~worker:1;
  checkb "drained once the leaf retires" true (Work_deque.drained d);
  checkb "park reports the drain instead of blocking" true
    (Work_deque.park d ~worker:0 = `Drained);
  Work_deque.close d;
  checkb "park after close" true (Work_deque.park d ~worker:0 = `Closed);
  checkb "closed flag" true (Work_deque.is_closed d)

(* Watchdog: run the search on a helper domain and poll, so a
   termination bug fails the test instead of hanging the suite (same
   scheme as test_fault.ml). *)
let bnb_with_timeout ~seconds f =
  let result = Atomic.make None in
  let _watched : unit Domain.t =
    Domain.spawn (fun () -> Atomic.set result (Some (f ())))
  in
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    match Atomic.get result with
    | Some r -> Some r
    | None ->
        if Unix.gettimeofday () -. t0 > seconds then None
        else begin
          Unix.sleepf 0.02;
          wait ()
        end
  in
  wait ()

let test_bnb_chain_termination () =
  (* A degenerate tree with exactly one live node at every instant: a
     chain of single-child nodes.  Four workers fight over that node —
     maximal park/steal/drain churn — and the search must still
     terminate with the deepest node as incumbent.  This is the stress
     test for the last-node-stolen-mid-drain race at the driver level. *)
  let depth = 2000 in
  let fdepth = float_of_int depth in
  let oracle =
    {
      Bnb.bound =
        (fun d ->
          let fd = float_of_int d /. fdepth in
          Some { Bnb.lower = fd; candidate = Some (d, 2.0 -. fd) });
      branch = (fun d -> if d < depth then [ d + 1 ] else []);
    }
  in
  let params =
    {
      Bnb.default_params with
      max_nodes = 10 * depth;
      rel_gap = 0.0;
      abs_gap = 0.0;
      domains = 4;
    }
  in
  match
    bnb_with_timeout ~seconds:60.0 (fun () -> Bnb.minimize ~params oracle 0)
  with
  | None -> Alcotest.fail "parallel chain search hung (termination bug)"
  | Some r ->
      checkb "terminated by proof, not budget" true
        (match r.Bnb.stop_reason with
        | Bnb.Proved_optimal | Bnb.Gap_reached -> true
        | _ -> false);
      (match r.Bnb.best with
      | Some (d, c) ->
          checki "deepest node wins" depth d;
          checkf 1e-12 "its cost" 1.0 c
      | None -> Alcotest.fail "no incumbent")

let test_bnb_seed_checkpoint_resume () =
  (* A checkpoint written during the seed phase (cadence 1, node budget
     small enough to trip before seeding finishes growing the frontier)
     must resume to the same optimum as an uninterrupted run. *)
  let target = 7.3 in
  let path = Filename.temp_file "ldafp_seed" ".ck" in
  let exact = { Bnb.default_params with rel_gap = 0.0; abs_gap = 0.0 } in
  let full =
    Bnb.minimize ~params:exact (integer_quadratic_oracle target) (-100, 100)
  in
  let params = { exact with Bnb.domains = 4; seed_factor = 8; max_nodes = 2 } in
  let ck = Bnb.checkpointing ~every_nodes:1 ~fingerprint:"seed-ck" path in
  let sliced =
    Bnb.minimize ~params ~checkpointing:ck (integer_quadratic_oracle target)
      (-100, 100)
  in
  checkb "budget tripped inside the seed phase" true
    (sliced.Bnb.stop_reason = Bnb.Node_budget
    && sliced.Bnb.stats.Bnb.seed_nodes >= 1
    && sliced.Bnb.stats.Bnb.seed_nodes = sliced.Bnb.nodes_explored);
  let state =
    (Checkpoint.load ~expect_fingerprint:"seed-ck" ~path ()
      : (int * int, int) Checkpoint.state)
  in
  let resumed =
    Bnb.resume
      ~params:{ params with Bnb.max_nodes = exact.Bnb.max_nodes }
      ~checkpointing:ck
      (integer_quadratic_oracle target)
      state
  in
  Sys.remove path;
  checkb "resumed run completes" true
    (match resumed.Bnb.stop_reason with
    | Bnb.Proved_optimal | Bnb.Gap_reached -> true
    | _ -> false);
  (match (full.Bnb.best, resumed.Bnb.best) with
  | Some (_, cf), Some (_, cr) ->
      checkf 0.0 "resumed run reaches the uninterrupted optimum" cf cr
  | _ -> Alcotest.fail "expected incumbents on both runs");
  checkb "seed accounting is cumulative across the chain" true
    (resumed.Bnb.stats.Bnb.seed_nodes >= sliced.Bnb.stats.Bnb.seed_nodes)

let prop_bnb_parallel_incumbent =
  QCheck.Test.make ~name:"parallel B&B matches sequential incumbent"
    ~count:25
    QCheck.(pair (float_range (-20.0) 20.0) (int_range 2 4))
    (fun (target, domains) ->
      let seq = Bnb.minimize (integer_quadratic_oracle target) (-25, 25) in
      let par =
        Bnb.minimize_parallel ~domains (integer_quadratic_oracle target)
          (-25, 25)
      in
      let ok_stop r =
        match r.Bnb.stop_reason with
        | Bnb.Proved_optimal | Bnb.Gap_reached -> true
        | _ -> false
      in
      match (seq.Bnb.best, par.Bnb.best) with
      | Some (_, cs), Some (_, cp) ->
          ok_stop seq && ok_stop par
          && Float.abs (cs -. cp) <= 1e-9 *. (1.0 +. Float.abs cs)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Gradcheck on the barrier calculus                                   *)
(* ------------------------------------------------------------------ *)

let test_socp_barrier_derivatives () =
  (* The hand-derived gradient/Hessian of the log-barrier (half-spaces +
     second-order cones) against finite differences, via the centering
     oracle at tau = 1. This is the calculus every Newton step relies
     on. *)
  let rng = Stats.Rng.create 77 in
  let n = 3 in
  let p =
    let b = Mat.init n n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    Mat.add_scaled_identity 1.0 (Mat.mul b (Mat.transpose b))
  in
  let q = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
  let lins = Socp.box_constraints (Vec.make n (-2.0)) (Vec.make n 2.0) in
  let cone =
    {
      Socp.l = Mat.init 2 n (fun i j -> if i = j then 0.5 else 0.1);
      g = [| 0.05; -0.05 |];
      c = Vec.make n 0.2;
      d = 1.5;
    }
  in
  let problem = Socp.problem ~p ~q ~lins ~socs:[ cone ] n in
  (* Probe the centering objective through a tiny wrapper solve: we use
     find_strictly_feasible's interior point as the test point. *)
  match Socp.find_strictly_feasible problem ~start:(Vec.zeros n) with
  | Socp.Strictly_feasible x0 | Socp.Unknown x0 -> (
      let oracle = Socp.centering_oracle_for_tests problem 1.0 in
      match Gradcheck.check_oracle oracle x0 with
      | None -> Alcotest.fail "interior point rejected by the oracle"
      | Some r ->
          checkb
            (Printf.sprintf "barrier gradient matches FD (err %.2e)"
               r.Gradcheck.max_grad_error)
            true
            (r.Gradcheck.max_grad_error < 1e-5);
          checkb
            (Printf.sprintf "barrier hessian matches FD (err %.2e)"
               r.Gradcheck.max_hess_error)
            true
            (r.Gradcheck.max_hess_error < 1e-4))
  | Socp.Infeasible _ -> Alcotest.fail "toy problem is feasible"

(* ------------------------------------------------------------------ *)
(* Admm_qp                                                             *)
(* ------------------------------------------------------------------ *)

let test_admm_unconstrained_like () =
  (* min (x-3)² with -10 <= x <= 10: optimum interior at 3. *)
  let pb =
    Admm_qp.box_problem
      ~p:(Mat.scale 2.0 (Mat.identity 1))
      ~q:[| -6.0 |] ~lo:[| -10.0 |] ~hi:[| 10.0 |] ()
  in
  let s = Admm_qp.solve pb in
  checkb "solved" true (s.Admm_qp.status = Admm_qp.Solved);
  checkf 1e-5 "interior optimum" 3.0 s.Admm_qp.x.(0)

let test_admm_active_bound () =
  (* min (x-3)² with x <= 1: bound active. *)
  let pb =
    Admm_qp.box_problem
      ~p:(Mat.scale 2.0 (Mat.identity 1))
      ~q:[| -6.0 |] ~lo:[| -1.0 |] ~hi:[| 1.0 |] ()
  in
  let s = Admm_qp.solve pb in
  checkf 1e-5 "clipped optimum" 1.0 s.Admm_qp.x.(0)

let test_admm_general_constraints () =
  (* min x² + y² s.t. x + y >= 2: optimum (1,1). *)
  let pb =
    Admm_qp.problem
      ~p:(Mat.scale 2.0 (Mat.identity 2))
      ~a:[| [| 1.0; 1.0 |] |]
      ~l:[| 2.0 |] ~u:[| Float.infinity |] ()
  in
  let s = Admm_qp.solve pb in
  checkf 1e-4 "x" 1.0 s.Admm_qp.x.(0);
  checkf 1e-4 "y" 1.0 s.Admm_qp.x.(1)

let test_admm_validation () =
  checkb "l > u rejected" true
    (match
       Admm_qp.box_problem ~lo:[| 1.0 |] ~hi:[| 0.0 |] ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Cross-validation of the two independent convex solvers on random
   box QPs: the barrier method and ADMM must agree. *)
let prop_admm_agrees_with_barrier =
  QCheck.Test.make ~name:"ADMM and barrier agree on random box QPs"
    ~count:40
    QCheck.(pair (int_range 1 6) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      let base =
        Mat.init n n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      let p =
        Mat.add_scaled_identity (0.5 *. float_of_int n)
          (Mat.mul base (Mat.transpose base))
      in
      let q = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-3.0) ~hi:3.0) in
      let lo = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:(-0.1)) in
      let hi = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:0.1 ~hi:2.0) in
      let admm = Admm_qp.solve (Admm_qp.box_problem ~p ~q ~lo ~hi ()) in
      let socp =
        Socp.solve
          (Socp.problem ~p ~q ~lins:(Socp.box_constraints lo hi) n)
          ~start:(Vec.zeros n)
      in
      Float.abs (admm.Admm_qp.objective -. socp.Socp.objective)
      <= 1e-4 *. (1.0 +. Float.abs socp.Socp.objective))

(* Warm-started barrier solves (schedule advance from a near-optimal
   start) must return the same certified answer as a cold solve: random
   box QPs with a cone, solved cold from scratch and then warm from the
   cold optimum with [warm_start_params]. *)
let prop_warm_start_agrees_with_cold =
  QCheck.Test.make ~name:"warm-started barrier agrees with cold solve"
    ~count:40
    QCheck.(pair (int_range 1 6) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      let base =
        Mat.init n n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      let p =
        Mat.add_scaled_identity (0.5 *. float_of_int n)
          (Mat.mul base (Mat.transpose base))
      in
      let q = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-3.0) ~hi:3.0) in
      let lo = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:(-0.1)) in
      let hi = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:0.1 ~hi:2.0) in
      let radius = Stats.Rng.uniform rng ~lo:1.0 ~hi:4.0 in
      let cone =
        { Socp.l = Mat.identity n; g = Vec.zeros n; c = Vec.zeros n;
          d = radius }
      in
      let pb =
        Socp.problem ~p ~q ~lins:(Socp.box_constraints lo hi) ~socs:[ cone ] n
      in
      match Socp.solve_auto pb ~start:(Vec.zeros n) with
      | None -> false (* origin is always feasible here *)
      | Some cold ->
          QCheck.assume (Socp.is_strictly_interior pb cold.Socp.x);
          let warm =
            Socp.solve
              ~params:(Socp.warm_start_params Socp.default_params)
              pb ~start:cold.Socp.x
          in
          Socp.is_feasible ~tol:1e-7 pb warm.Socp.x
          && Float.abs (warm.Socp.objective -. cold.Socp.objective)
             <= cold.Socp.gap_bound +. warm.Socp.gap_bound
                +. (1e-7 *. (1.0 +. Float.abs cold.Socp.objective)))

let test_warm_start_params () =
  let p = Socp.default_params in
  let w = Socp.warm_start_params p in
  checkf 1e-9 "tau0 advanced 5 levels" (p.Socp.tau0 *. (p.Socp.mu ** 5.0))
    w.Socp.tau0;
  let w2 = Socp.warm_start_params ~levels:2 p in
  checkf 1e-9 "custom levels" (p.Socp.tau0 *. (p.Socp.mu ** 2.0)) w2.Socp.tau0;
  checkf 1e-12 "gap_tol unchanged" p.Socp.gap_tol w2.Socp.gap_tol

(* A shared 3-variable test problem: coupled quadratic, unit box, and a
   ball of radius 2 around the origin. *)
let restrict_test_problem () =
  let p =
    [| [| 2.0; 1.0; 0.0 |]; [| 1.0; 2.0; 0.0 |]; [| 0.0; 0.0; 2.0 |] |]
  in
  let q = [| -1.0; 0.5; -2.0 |] in
  let lins = Socp.box_constraints (Vec.make 3 (-1.0)) (Vec.make 3 1.0) in
  let ball =
    { Socp.l = Mat.identity 3; g = Vec.zeros 3; c = Vec.zeros 3; d = 2.0 }
  in
  Socp.problem ~p ~q ~lins ~socs:[ ball ] 3

let test_socp_restrict_substitution () =
  let pb = restrict_test_problem () in
  let v = 0.25 in
  match Socp.restrict pb ~fixed:[| (1, v) |] with
  | None -> Alcotest.fail "restriction of an interior pin must exist"
  | Some r ->
      checki "full dimension" 3 r.Socp.full_n;
      checki "reduced dimension" 2 r.Socp.reduced.Socp.n;
      checkb "free indices" true (r.Socp.free = [| 0; 2 |]);
      (* The substitution is exact: the reduced objective plus the frozen
         offset equals the full objective at the embedded point, for any
         reduced point. *)
      let rng = Stats.Rng.create 5 in
      for _ = 1 to 25 do
        let y = Vec.init 2 (fun _ -> Stats.Rng.uniform rng ~lo:(-3.0) ~hi:3.0) in
        let x = Socp.restriction_embed r y in
        checkf 1e-12 "pinned coordinate embedded" v x.(1);
        checkb "project . embed = id" true (Socp.restriction_project r x = y);
        checkf 1e-10 "objective identity"
          (Socp.objective_value pb x)
          (Socp.objective_value r.Socp.reduced y
          +. Socp.restriction_objective_const r)
      done;
      (* The reduced problem has a usable strict interior and its optimum
         embeds to a full-space feasible point on the pinned slice. *)
      let sol =
        match Socp.solve_auto r.Socp.reduced ~start:(Vec.zeros 2) with
        | Some s -> s
        | None -> Alcotest.fail "reduced problem should be solvable"
      in
      let x = Socp.restriction_embed r sol.Socp.x in
      checkb "embedded optimum feasible" true
        (Socp.is_feasible ~tol:1e-7 pb x);
      checkf 1e-12 "embedded optimum stays pinned" v x.(1)

let test_socp_restrict_validation () =
  let pb = restrict_test_problem () in
  (* A pin outside the box contradicts the box half-spaces: the slice is
     empty and restrict certifies it. *)
  checkb "infeasible pin detected" true
    (Socp.restrict pb ~fixed:[| (1, 5.0) |] = None);
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  checkb "empty fixed rejected" true (raises (fun () ->
      Socp.restrict pb ~fixed:[||]));
  checkb "all-fixed rejected" true (raises (fun () ->
      Socp.restrict pb ~fixed:[| (0, 0.0); (1, 0.0); (2, 0.0) |]));
  checkb "out-of-range index rejected" true (raises (fun () ->
      Socp.restrict pb ~fixed:[| (3, 0.0) |]))

let test_socp_correct_to_interior () =
  (* A point exactly on a box face has zero slack — the pull-free repair
     of last resort must move it strictly inside. *)
  let lins = Socp.box_constraints (Vec.zeros 2) (Vec.make 2 1.0) in
  let pb = Socp.problem ~p:(Mat.identity 2) ~lins 2 in
  let x = [| 1.0; 0.5 |] in
  checkb "starts on the boundary" false (Socp.is_strictly_interior pb x);
  match Socp.correct_to_interior pb x with
  | None -> Alcotest.fail "one Newton step should repair a boundary point"
  | Some y ->
      checkb "corrected point strictly interior" true
        (Socp.min_relative_slack pb y > 0.0)

(* The tentpole property: pulling a clipped parent optimum toward a
   strictly interior target always lands certifiably inside — on random
   box-and-ball problems with the start pushed onto a random box face,
   exactly how branch-cut clipping places inherited points. *)
let prop_pull_in_strictly_interior =
  QCheck.Test.make ~name:"pull-in always lands strictly interior"
    ~count:100
    QCheck.(pair (int_range 1 6) (int_range 0 1_000_000))
    (fun (n, seed) ->
      let rng = Stats.Rng.create seed in
      let lo = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:(-0.1)) in
      let hi = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:0.1 ~hi:2.0) in
      let radius = Stats.Rng.uniform rng ~lo:1.0 ~hi:4.0 in
      let cone =
        { Socp.l = Mat.identity n; g = Vec.zeros n; c = Vec.zeros n;
          d = radius }
      in
      let pb = Socp.problem ~lins:(Socp.box_constraints lo hi) ~socs:[ cone ] n in
      let x0 =
        Array.init n (fun i -> Stats.Rng.uniform rng ~lo:lo.(i) ~hi:hi.(i))
      in
      let j = Stats.Rng.int rng n in
      x0.(j) <- (if Stats.Rng.uniform rng ~lo:0.0 ~hi:1.0 < 0.5 then lo.(j)
                 else hi.(j));
      (* The origin is strictly interior by construction (box spans it,
         ball slack = radius >= 1), so the pull-in must succeed... *)
      match Socp.pull_to_interior pb ~target:(Vec.zeros n) x0 with
      | None -> QCheck.Test.fail_report "pull-in failed with interior target"
      | Some y ->
          (* ...and certifiably: strictly positive relative slack on
             every constraint, not just epsilon-feasibility. *)
          if Socp.min_relative_slack pb y <= 0.0 then
            QCheck.Test.fail_reportf "pulled point has slack %.3g"
              (Socp.min_relative_slack pb y)
          else begin
            match Socp.prepare_warm_start pb x0 ~target:(Vec.zeros n) with
            | None ->
                QCheck.Test.fail_report "prepare refused a repairable point"
            | Some (z, _) -> Socp.min_relative_slack pb z > 0.0
          end)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pqueue_sorted;
      prop_pqueue_filter_heap;
      prop_pqueue_steal_half;
      prop_cert_lower_bounds_reference;
      prop_admm_agrees_with_barrier;
      prop_warm_start_agrees_with_cold;
      prop_pull_in_strictly_interior;
      prop_bnb_parallel_incumbent;
    ]

let () =
  Alcotest.run "optim"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "sup/inf squared (eq 26-27)" `Quick
            test_interval_sup_inf_sq;
          Alcotest.test_case "split/intersect" `Quick
            test_interval_split_intersect;
          Alcotest.test_case "scale/shift" `Quick test_interval_scale_shift;
          Alcotest.test_case "directed rounding" `Quick
            test_interval_directed_rounding;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "filter" `Quick test_pqueue_filter;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "drop worst" `Quick test_pqueue_drop_worst;
          Alcotest.test_case "filter releases dropped values" `Quick
            test_pqueue_filter_releases_dropped;
          Alcotest.test_case "steal half" `Quick test_pqueue_steal_half;
          Alcotest.test_case "steal half edge cases" `Quick
            test_pqueue_steal_half_edges;
          Alcotest.test_case "drain by rank" `Quick test_pqueue_drain;
        ] );
      ( "work_deque",
        [
          Alcotest.test_case "push/take/release" `Quick test_work_deque_basic;
          Alcotest.test_case "steal-half ordering" `Quick
            test_work_deque_steal_ordering;
          Alcotest.test_case "batched mirrors stay conservative" `Quick
            test_work_deque_mirror_conservative;
          Alcotest.test_case "last node stolen mid-drain" `Quick
            test_work_deque_last_node_stolen;
        ] );
      ( "newton",
        [
          Alcotest.test_case "quadratic" `Quick test_newton_quadratic;
          Alcotest.test_case "log barrier 1d" `Quick
            test_newton_log_barrier_1d;
          Alcotest.test_case "infeasible start" `Quick
            test_newton_rejects_infeasible_start;
          Alcotest.test_case "NaN decrement diverges" `Quick
            test_newton_nan_decrement_is_diverged;
        ] );
      ( "socp",
        [
          Alcotest.test_case "box QP" `Quick test_socp_box_qp;
          Alcotest.test_case "unconstrained" `Quick test_socp_unconstrained;
          Alcotest.test_case "cone projection" `Quick
            test_socp_cone_projection;
          Alcotest.test_case "lower bound certificate" `Quick
            test_socp_lower_bound_certificate;
          Alcotest.test_case "dual certificate (analytic)" `Quick
            test_socp_certificate_analytic;
          Alcotest.test_case "dual certificate survives corrupt primal"
            `Quick test_socp_certificate_survives_corrupt_primal;
          Alcotest.test_case "rejects infeasible start" `Quick
            test_socp_rejects_infeasible_start;
          Alcotest.test_case "boundary start nudged" `Quick
            test_socp_boundary_start_nudged;
          Alcotest.test_case "phase1 feasible" `Quick
            test_phase1_finds_feasible;
          Alcotest.test_case "phase1 infeasible" `Quick
            test_phase1_detects_infeasible;
          Alcotest.test_case "solve_auto" `Quick test_solve_auto_pipeline;
          Alcotest.test_case "warm-start params" `Quick test_warm_start_params;
          Alcotest.test_case "restrict substitutes exactly" `Quick
            test_socp_restrict_substitution;
          Alcotest.test_case "restrict validation" `Quick
            test_socp_restrict_validation;
          Alcotest.test_case "Newton correction repairs boundary" `Quick
            test_socp_correct_to_interior;
          Alcotest.test_case "dimension checks" `Quick
            test_socp_dimension_checks;
        ] );
      ( "gradcheck",
        [
          Alcotest.test_case "SOC barrier derivatives" `Quick
            test_socp_barrier_derivatives;
        ] );
      ( "admm",
        [
          Alcotest.test_case "interior optimum" `Quick
            test_admm_unconstrained_like;
          Alcotest.test_case "active bound" `Quick test_admm_active_bound;
          Alcotest.test_case "general constraints" `Quick
            test_admm_general_constraints;
          Alcotest.test_case "validation" `Quick test_admm_validation;
        ] );
      ( "bnb",
        [
          Alcotest.test_case "integer optimum" `Quick
            test_bnb_finds_integer_optimum;
          Alcotest.test_case "matches brute force" `Quick
            test_bnb_exhaustive_agreement;
          Alcotest.test_case "node budget" `Quick test_bnb_node_budget;
          Alcotest.test_case "infeasible root" `Quick test_bnb_infeasible_root;
          Alcotest.test_case "pruning" `Quick
            test_bnb_pruning_respects_incumbent;
          Alcotest.test_case "wall-clock time limit" `Quick
            test_bnb_wall_clock_time_limit;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_bnb_parallel_matches_sequential;
          Alcotest.test_case "domains=1 identity" `Quick
            test_bnb_domains_one_identity;
          Alcotest.test_case "single-chain termination on 4 domains" `Quick
            test_bnb_chain_termination;
          Alcotest.test_case "checkpoint mid-seed resumes" `Quick
            test_bnb_seed_checkpoint_resume;
        ] );
      ("properties", qcheck_tests);
    ]
