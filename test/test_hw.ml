(* Tests for the hardware-model library: gate counts, power model,
   cycle-accurate datapath, Verilog generation. *)

open Fixedpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

(* ------------------------------------------------------------------ *)
(* Gate_model                                                          *)
(* ------------------------------------------------------------------ *)

let test_gate_counts_structural () =
  let add = Hw.Gate_model.ripple_adder ~width:8 in
  checki "adder FAs" 8 add.Hw.Gate_model.full_adders;
  let mul = Hw.Gate_model.array_multiplier ~width:8 in
  checki "multiplier ANDs" 64 mul.Hw.Gate_model.and_cells;
  checki "multiplier FAs" 56 mul.Hw.Gate_model.full_adders;
  let reg = Hw.Gate_model.register ~width:8 in
  checki "register FFs" 8 reg.Hw.Gate_model.flipflops

let test_gate_counts_quadratic_growth () =
  (* The multiplier dominates and grows ~quadratically: 2x width must be
     close to 4x gate equivalents at large widths. *)
  let g w =
    Hw.Gate_model.gate_equivalents (Hw.Gate_model.array_multiplier ~width:w)
  in
  let ratio = g 32 /. g 16 in
  checkb "quadratic-ish" true (ratio > 3.5 && ratio < 4.5)

let test_gate_counts_compose () =
  let open Hw.Gate_model in
  let a = ripple_adder ~width:4 and b = register ~width:4 in
  let c = a ++ b in
  checki "FAs compose" 4 c.full_adders;
  checki "FFs compose" 4 c.flipflops;
  let clf = classifier ~width:6 ~n_features:42 in
  (* ROM dominates flip-flop count: 42 words x 6 bits + 2 registers *)
  checki "classifier FFs" ((42 * 6) + 12) clf.flipflops;
  checkb "invalid width" true
    (match ripple_adder ~width:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Power_model                                                         *)
(* ------------------------------------------------------------------ *)

let test_power_quadratic_ratios () =
  (* The paper's two headline numbers. *)
  checkf 1e-12 "3x word length = 9x power" 9.0
    (Hw.Power_model.quadratic_ratio ~from_wl:12 ~to_wl:4);
  checkf 0.01 "8b -> 6b = 1.78x" 1.7778
    (Hw.Power_model.quadratic_ratio ~from_wl:8 ~to_wl:6)

let test_power_monotone () =
  let prev = ref 0.0 in
  List.iter
    (fun wl ->
      let p = Hw.Power_model.gate_based ~word_length:wl ~n_features:42 in
      checkb (Printf.sprintf "monotone at %d" wl) true (p > !prev);
      prev := p)
    [ 3; 4; 5; 6; 7; 8; 10; 12; 16 ]

let test_power_gate_vs_quadratic_shape () =
  (* At large word lengths the gate model approaches the quadratic one:
     ratio(16->8) under the gate model should be within a factor ~2 of 4. *)
  let g wl = Hw.Power_model.gate_based ~word_length:wl ~n_features:42 in
  let ratio = g 16 /. g 8 in
  checkb "between linear and quadratic" true (ratio > 2.0 && ratio < 4.5)

let test_energy_per_classification () =
  let e = Hw.Power_model.energy_per_classification ~word_length:6 ~n_features:10 in
  let p = Hw.Power_model.gate_based ~word_length:6 ~n_features:10 in
  checkf 1e-9 "energy = power x cycles" (p *. 11.0) e

(* ------------------------------------------------------------------ *)
(* Datapath                                                            *)
(* ------------------------------------------------------------------ *)

let test_datapath_paper_example () =
  let fmt = Qformat.make ~k:3 ~f:0 in
  let w = Fx_vector.of_floats fmt [| 1.0; 1.0; 1.0 |] in
  let x = Fx_vector.of_floats fmt [| 3.0; 3.0; -4.0 |] in
  let trace = Hw.Datapath.run ~w ~x ~threshold:(Fx.zero fmt) () in
  checki "final y" 2 trace.Hw.Datapath.y_raw;
  checki "two wraps" 2 (Hw.Datapath.wrap_events trace);
  checkb "decision A (2 >= 0)" true trace.Hw.Datapath.decision

let test_datapath_equals_fx_dot () =
  (* The RTL-level trace must agree with the arithmetic library MAC. *)
  let rng = Stats.Rng.create 12 in
  for _ = 1 to 300 do
    let f = 1 + Stats.Rng.int rng 6 in
    let fmt = Qformat.make ~k:2 ~f in
    let m = 1 + Stats.Rng.int rng 10 in
    let rand_vec () =
      Fx_vector.of_floats fmt
        (Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0))
    in
    let w = rand_vec () and x = rand_vec () in
    let trace = Hw.Datapath.run ~w ~x ~threshold:(Fx.zero fmt) () in
    checki "same accumulator" (Fx.raw (Fx_vector.dot w x))
      trace.Hw.Datapath.y_raw
  done

let test_datapath_cycle_count () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let w = Fx_vector.of_floats fmt [| 0.5; 0.5; 0.5; 0.5; 0.5 |] in
  let x = Fx_vector.of_floats fmt [| 1.0; 1.0; 1.0; 1.0; 1.0 |] in
  let trace = Hw.Datapath.run ~w ~x ~threshold:(Fx.zero fmt) () in
  checki "one cycle per feature" 5 (List.length trace.Hw.Datapath.cycles)

let test_datapath_polarity () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let w = Fx_vector.of_floats fmt [| 1.0 |] in
  let x = Fx_vector.of_floats fmt [| 1.0 |] in
  let t1 = Hw.Datapath.run ~polarity:true ~w ~x ~threshold:(Fx.zero fmt) () in
  let t2 = Hw.Datapath.run ~polarity:false ~w ~x ~threshold:(Fx.zero fmt) () in
  checkb "polarity flips decision" true
    (t1.Hw.Datapath.decision <> t2.Hw.Datapath.decision)

let test_datapath_parallel_equals_serial () =
  (* Wrapping addition is associative/commutative mod 2^WL, so the adder
     tree must produce the identical word — on random vectors including
     ones that wrap. *)
  let rng = Stats.Rng.create 14 in
  for _ = 1 to 300 do
    let f = 1 + Stats.Rng.int rng 6 in
    let fmt = Qformat.make ~k:2 ~f in
    let m = 1 + Stats.Rng.int rng 16 in
    let rand_vec () =
      Fx_vector.of_floats fmt
        (Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0))
    in
    let w = rand_vec () and x = rand_vec () in
    let thr = Fx.of_float ~ov:Rounding.Saturate fmt 0.25 in
    let serial = Hw.Datapath.run ~w ~x ~threshold:thr () in
    let parallel = Hw.Datapath.run_parallel ~w ~x ~threshold:thr () in
    checki "same word" serial.Hw.Datapath.y_raw parallel.Hw.Datapath.y_raw;
    checkb "same decision" serial.Hw.Datapath.decision
      parallel.Hw.Datapath.decision
  done

let test_datapath_parallel_paper_example () =
  let fmt = Qformat.make ~k:3 ~f:0 in
  let w = Fx_vector.of_floats fmt [| 1.0; 1.0; 1.0 |] in
  let x = Fx_vector.of_floats fmt [| 3.0; 3.0; -4.0 |] in
  let trace = Hw.Datapath.run_parallel ~w ~x ~threshold:(Fx.zero fmt) () in
  checki "tree also recovers 2" 2 trace.Hw.Datapath.y_raw

let test_datapath_mismatch_rejected () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let w = Fx_vector.of_floats fmt [| 1.0 |] in
  let x = Fx_vector.of_floats (Qformat.make ~k:2 ~f:3) [| 1.0 |] in
  checkb "format mismatch" true
    (match Hw.Datapath.run ~w ~x ~threshold:(Fx.zero fmt) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Verilog_gen                                                         *)
(* ------------------------------------------------------------------ *)

let sample_spec () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  Hw.Verilog_gen.spec_of_weights ~fmt
    ~weights:[| 0.5; -1.0; 1.9375 |]
    ~threshold:0.25 ()

let test_verilog_rom_contents () =
  let spec = sample_spec () in
  let rom = Hw.Verilog_gen.rom_contents spec in
  checki "rows" 3 (List.length rom);
  (* 0.5 in Q2.4 = raw 8 = 001000; -1.0 = raw -16 = 110000 *)
  Alcotest.(check string) "w0 bits" "001000" (List.assoc 0 rom);
  Alcotest.(check string) "w1 bits" "110000" (List.assoc 1 rom);
  Alcotest.(check string) "w2 bits" "011111" (List.assoc 2 rom)

let test_verilog_module_wellformed () =
  let spec = sample_spec () in
  let src = Hw.Verilog_gen.module_source spec in
  let contains needle =
    let nlen = String.length needle and hlen = String.length src in
    let rec go i =
      i + nlen <= hlen && (String.sub src i nlen = needle || go (i + 1))
    in
    go 0
  in
  checkb "module decl" true (contains "module ldafp_classifier");
  checkb "endmodule" true (contains "endmodule");
  checkb "threshold constant" true (contains "THRESHOLD");
  checkb "feature count" true (contains "localparam integer M = 3");
  checkb "signed arithmetic" true (contains "signed");
  checkb "rom entries" true (contains "w_rom[2] = 6'b011111");
  (* balanced begin/end as a cheap syntax sanity check *)
  let count needle =
    let nlen = String.length needle in
    let rec go i acc =
      if i + nlen > String.length src then acc
      else if String.sub src i nlen = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  checkb "begin/end balanced" true (count "begin" = count "end" - 1)
(* "endmodule" contains one extra "end" *)

let test_verilog_testbench () =
  let spec = sample_spec () in
  let fmt = Qformat.make ~k:2 ~f:4 in
  let vectors =
    [
      { Hw.Verilog_gen.inputs = Fx_vector.of_floats fmt [| 1.0; 0.0; 0.0 |];
        expected = true };
      { Hw.Verilog_gen.inputs = Fx_vector.of_floats fmt [| -1.0; 1.0; 0.0 |];
        expected = false };
    ]
  in
  let tb = Hw.Verilog_gen.testbench_source spec vectors in
  let contains needle =
    let nlen = String.length needle and hlen = String.length tb in
    let rec go i =
      i + nlen <= hlen && (String.sub tb i nlen = needle || go (i + 1))
    in
    go 0
  in
  checkb "tb module" true (contains "module ldafp_classifier_tb");
  checkb "dut instantiated" true (contains "ldafp_classifier dut");
  checkb "pass message" true (contains "PASS (2 vectors)");
  checkb "checks vector 0" true (contains "FAIL vector 0")

let test_verilog_binary_of_negative () =
  (* two's complement encodings via the public ROM interface *)
  let fmt = Qformat.make ~k:3 ~f:0 in
  let spec =
    Hw.Verilog_gen.spec_of_weights ~fmt ~weights:[| -4.0; -1.0; 3.0 |]
      ~threshold:0.0 ()
  in
  let rom = Hw.Verilog_gen.rom_contents spec in
  Alcotest.(check string) "-4 = 100" "100" (List.assoc 0 rom);
  Alcotest.(check string) "-1 = 111" "111" (List.assoc 1 rom);
  Alcotest.(check string) "3 = 011" "011" (List.assoc 2 rom)

let () =
  Alcotest.run "hw"
    [
      ( "gate_model",
        [
          Alcotest.test_case "structural counts" `Quick
            test_gate_counts_structural;
          Alcotest.test_case "quadratic growth" `Quick
            test_gate_counts_quadratic_growth;
          Alcotest.test_case "composition" `Quick test_gate_counts_compose;
        ] );
      ( "power_model",
        [
          Alcotest.test_case "paper ratios" `Quick test_power_quadratic_ratios;
          Alcotest.test_case "monotone" `Quick test_power_monotone;
          Alcotest.test_case "gate vs quadratic" `Quick
            test_power_gate_vs_quadratic_shape;
          Alcotest.test_case "energy" `Quick test_energy_per_classification;
        ] );
      ( "datapath",
        [
          Alcotest.test_case "paper 3+3-4 example" `Quick
            test_datapath_paper_example;
          Alcotest.test_case "equals Fx_vector.dot" `Quick
            test_datapath_equals_fx_dot;
          Alcotest.test_case "cycle count" `Quick test_datapath_cycle_count;
          Alcotest.test_case "polarity" `Quick test_datapath_polarity;
          Alcotest.test_case "parallel equals serial" `Quick
            test_datapath_parallel_equals_serial;
          Alcotest.test_case "parallel paper example" `Quick
            test_datapath_parallel_paper_example;
          Alcotest.test_case "mismatch rejected" `Quick
            test_datapath_mismatch_rejected;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "rom contents" `Quick test_verilog_rom_contents;
          Alcotest.test_case "module well-formed" `Quick
            test_verilog_module_wellformed;
          Alcotest.test_case "testbench" `Quick test_verilog_testbench;
          Alcotest.test_case "negative encodings" `Quick
            test_verilog_binary_of_negative;
        ] );
    ]
