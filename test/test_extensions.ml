(* Tests for the extension modules: greedy sequential rounding,
   word-length selection, multi-class voting, ROC analysis. *)

open Ldafp_core
open Fixedpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

module Gradcheck_helpers = struct
  let check_grad ~f ~grad x =
    (Optim.Gradcheck.check ~f ~grad x).Optim.Gradcheck.max_grad_error
end

let easy_dataset seed n =
  let rng = Stats.Rng.create seed in
  let gen offset =
    Array.init n (fun _ ->
        [|
          offset +. (0.3 *. Stats.Sampler.std_normal rng);
          0.2 *. Stats.Sampler.std_normal rng;
        |])
  in
  Datasets.Dataset.of_class_matrices ~name:"easy" ~a:(gen 1.0) ~b:(gen (-1.0))

(* ------------------------------------------------------------------ *)
(* Greedy_round                                                        *)
(* ------------------------------------------------------------------ *)

let small_scatter () =
  let a =
    [| [| 0.5; 0.1 |]; [| 0.7; -0.1 |]; [| 0.6; 0.2 |]; [| 0.4; -0.2 |] |]
  in
  let b =
    [| [| -0.5; 0.15 |]; [| -0.7; -0.15 |]; [| -0.6; 0.1 |]; [| -0.4; -0.1 |] |]
  in
  Stats.Scatter.of_data a b

let test_greedy_produces_feasible () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:3) (small_scatter ()) in
  match Greedy_round.train pb with
  | None -> Alcotest.fail "greedy found nothing"
  | Some (w, c) ->
      checkb "feasible" true (Ldafp_problem.feasible pb w);
      checkf 1e-12 "cost consistent" c (Ldafp_problem.cost pb w)

let test_greedy_never_worse_than_chance_on_easy_data () =
  let ds = easy_dataset 21 200 in
  let fmt = Qformat.make ~k:2 ~f:3 in
  match Greedy_round.train_classifier ~fmt ds with
  | None -> Alcotest.fail "no classifier"
  | Some clf -> checkb "separates easy data" true (Eval.error_fixed clf ds < 0.05)

let test_greedy_between_conventional_and_optimal () =
  (* On the paper's synthetic task at a short word length the greedy
     baseline must beat blind rounding (which collapses to 50%). *)
  let rng = Stats.Rng.create 42 in
  let train = Datasets.Synthetic.generate ~n_per_class:600 rng in
  let test = Datasets.Synthetic.generate ~n_per_class:3000 rng in
  let fmt = Qformat.make ~k:2 ~f:2 in
  let conv = Pipeline.train_conventional ~fmt train in
  match Greedy_round.train_classifier ~fmt train with
  | None -> Alcotest.fail "no greedy classifier"
  | Some g ->
      let e_conv = Eval.error_fixed conv test in
      let e_greedy = Eval.error_fixed g test in
      checkb
        (Printf.sprintf "greedy (%.3f) beats conventional (%.3f)" e_greedy
           e_conv)
        true (e_greedy < e_conv -. 0.05)

let test_greedy_weights_on_grid () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:4) (small_scatter ()) in
  match Greedy_round.train pb with
  | None -> Alcotest.fail "nothing"
  | Some (w, _) -> checkb "on grid" true (Ldafp_problem.on_grid pb w)

(* ------------------------------------------------------------------ *)
(* Wordlength                                                          *)
(* ------------------------------------------------------------------ *)

let fake_frontier () =
  (* Build classifier stubs cheaply. *)
  let clf wl =
    let fmt = Qformat.make ~k:2 ~f:(wl - 2) in
    Fixed_classifier.of_weights ~fmt ~scaling:(Scaling.identity 1)
      ~weights:[| 1.0 |] ~threshold:0.0 ()
  in
  List.map
    (fun (wl, error) ->
      {
        Wordlength.wl;
        classifier = clf wl;
        error;
        power = Hw.Power_model.quadratic_relative ~word_length:wl;
      })
    [ (4, 0.30); (6, 0.22); (8, 0.21); (10, 0.23); (12, 0.205) ]

let test_wordlength_minimal () =
  let f = fake_frontier () in
  (match Wordlength.minimal_word_length ~slack:0.02 f with
  | Some p -> checki "first within slack of best (0.205)" 6 p.Wordlength.wl
  | None -> Alcotest.fail "none");
  match Wordlength.minimal_word_length ~slack:0.0 f with
  | Some p -> checki "exact best" 12 p.Wordlength.wl
  | None -> Alcotest.fail "none"

let test_wordlength_cheapest_within () =
  let f = fake_frontier () in
  (match Wordlength.cheapest_within ~max_error:0.25 f with
  | Some p -> checki "cheapest under budget" 6 p.Wordlength.wl
  | None -> Alcotest.fail "none");
  checkb "impossible budget" true
    (Wordlength.cheapest_within ~max_error:0.01 f = None)

let test_wordlength_reduction () =
  let baseline =
    List.map
      (fun p ->
        { p with Wordlength.error = (if p.Wordlength.wl >= 12 then 0.2 else 0.5) })
      (fake_frontier ())
  in
  let improved =
    List.map
      (fun p -> { p with Wordlength.error = 0.2 })
      (fake_frontier ())
  in
  match Wordlength.word_length_reduction ~baseline ~improved () with
  | Some (b, i, ratio) ->
      checki "baseline needs 12" 12 b;
      checki "improved needs 4" 4 i;
      checkf 1e-9 "power ratio 9x" 9.0 ratio
  | None -> Alcotest.fail "none"

let test_wordlength_sweep_end_to_end () =
  let ds = easy_dataset 22 120 in
  let frontier =
    Wordlength.sweep ~wls:[ 4; 6; 8 ]
      ~policy:Fixedpoint.Format_policy.default
      ~train:(fun ~fmt d -> Some (Pipeline.train_conventional ~fmt d))
      ~validate:(fun clf -> Eval.error_fixed clf ds)
      ds
  in
  checki "all word lengths trained" 3 (List.length frontier);
  List.iter
    (fun p -> checkb "low error on easy data" true (p.Wordlength.error < 0.1))
    frontier;
  (* ascending order and power monotone *)
  let wls = List.map (fun p -> p.Wordlength.wl) frontier in
  checkb "sorted" true (wls = List.sort compare wls)

(* ------------------------------------------------------------------ *)
(* Multiclass                                                          *)
(* ------------------------------------------------------------------ *)

let three_class_dataset seed n =
  let rng = Stats.Rng.create seed in
  let centers = [| (1.2, 0.0); (-0.6, 1.0); (-0.6, -1.0) |] in
  let features = ref [] and labels = ref [] in
  Array.iteri
    (fun c (cx, cy) ->
      for _ = 1 to n do
        features :=
          [|
            cx +. (0.3 *. Stats.Sampler.std_normal rng);
            cy +. (0.3 *. Stats.Sampler.std_normal rng);
          |]
          :: !features;
        labels := c :: !labels
      done)
    centers;
  Multiclass.create ~name:"three"
    ~features:(Array.of_list (List.rev !features))
    ~labels:(Array.of_list (List.rev !labels))

let test_multiclass_create_validation () =
  checkb "negative label" true
    (match
       Multiclass.create ~name:"x" ~features:[| [| 1.0 |] |] ~labels:[| -1 |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "empty class" true
    (match
       Multiclass.create ~name:"x"
         ~features:[| [| 1.0 |]; [| 2.0 |] |]
         ~labels:[| 0; 2 |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_multiclass_pairwise () =
  let ds = three_class_dataset 30 5 in
  let pair = Multiclass.pairwise ds ~a:0 ~b:2 in
  checki "10 trials" 10 (Datasets.Dataset.n_trials pair);
  let na, nb = Datasets.Dataset.class_counts pair in
  checki "5 as A" 5 na;
  checki "5 as B" 5 nb

let test_multiclass_train_predict () =
  let ds = three_class_dataset 31 40 in
  let fmt = Qformat.make ~k:2 ~f:4 in
  match
    Multiclass.train
      ~train:(fun d -> Some (Pipeline.train_conventional ~fmt d))
      ds
  with
  | None -> Alcotest.fail "training failed"
  | Some mc ->
      checki "three machines for three classes" 3
        (List.length mc.Multiclass.machines);
      checkb "low training error" true (Multiclass.error mc ds < 0.05);
      (* votes sum to K(K-1)/2 *)
      let v = Multiclass.votes mc [| 1.2; 0.0 |] in
      checki "votes total" 3 (Array.fold_left ( + ) 0 v);
      checki "center of class 0 predicted 0" 0 (Multiclass.predict mc [| 1.2; 0.0 |]);
      checki "center of class 1 predicted 1" 1 (Multiclass.predict mc [| -0.6; 1.0 |]);
      checki "center of class 2 predicted 2" 2
        (Multiclass.predict mc [| -0.6; -1.0 |]);
      let m = Multiclass.confusion_matrix mc ds in
      let total =
        Array.fold_left
          (fun acc row -> Array.fold_left ( + ) acc row)
          0 m
      in
      checki "confusion totals trials" (Multiclass.n_trials ds) total

let test_multiclass_training_failure_propagates () =
  let ds = three_class_dataset 32 10 in
  checkb "failure propagates" true
    (Multiclass.train ~train:(fun _ -> None) ds = None)

(* ------------------------------------------------------------------ *)
(* ROC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_roc_perfect_separation () =
  let scores = [| 0.9; 0.8; 0.7; 0.2; 0.1 |] in
  let labels = [| true; true; true; false; false |] in
  let roc = Eval.roc_of_scores ~scores ~labels in
  checkf 1e-12 "perfect AUC" 1.0 roc.Eval.auc

let test_roc_reversed () =
  let scores = [| 0.1; 0.2; 0.8; 0.9 |] in
  let labels = [| true; true; false; false |] in
  let roc = Eval.roc_of_scores ~scores ~labels in
  checkf 1e-12 "worst AUC" 0.0 roc.Eval.auc

let test_roc_random_is_half () =
  (* All scores tied: single diagonal segment, AUC = 1/2. *)
  let scores = [| 0.5; 0.5; 0.5; 0.5 |] in
  let labels = [| true; false; true; false |] in
  let roc = Eval.roc_of_scores ~scores ~labels in
  checkf 1e-12 "tied AUC" 0.5 roc.Eval.auc;
  checki "two points" 2 (Array.length roc.Eval.points)

let test_roc_endpoints_and_monotonicity () =
  let rng = Stats.Rng.create 33 in
  let n = 200 in
  let labels = Array.init n (fun _ -> Stats.Rng.bool rng) in
  let scores =
    Array.mapi
      (fun _ l ->
        (if l then 0.3 else 0.0) +. Stats.Sampler.std_normal rng)
      labels
  in
  let roc = Eval.roc_of_scores ~scores ~labels in
  let k = Array.length roc.Eval.points in
  checkb "starts at origin" true (roc.Eval.points.(0) = (0.0, 0.0));
  checkb "ends at (1,1)" true (roc.Eval.points.(k - 1) = (1.0, 1.0));
  for i = 1 to k - 1 do
    let x0, y0 = roc.Eval.points.(i - 1) and x1, y1 = roc.Eval.points.(i) in
    checkb "monotone" true (x1 >= x0 && y1 >= y0)
  done;
  checkb "informative scores beat chance" true (roc.Eval.auc > 0.5)

let test_roc_fixed_classifier () =
  let ds = easy_dataset 34 200 in
  let fmt = Qformat.make ~k:2 ~f:4 in
  let clf = Pipeline.train_conventional ~fmt ds in
  let roc = Eval.roc_fixed clf ds in
  checkb "near-perfect AUC on easy data" true (roc.Eval.auc > 0.98)

let test_roc_validation () =
  checkb "single class rejected" true
    (match
       Eval.roc_of_scores ~scores:[| 1.0; 2.0 |] ~labels:[| true; true |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "mismatch rejected" true
    (match Eval.roc_of_scores ~scores:[| 1.0 |] ~labels:[| true; false |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_margin_sign_matches_predict () =
  let rng = Stats.Rng.create 35 in
  let fmt = Qformat.make ~k:2 ~f:4 in
  List.iter
    (fun polarity ->
      let clf =
        Fixed_classifier.of_weights ~polarity ~fmt
          ~scaling:(Scaling.identity 2) ~weights:[| 0.75; -0.5 |]
          ~threshold:0.125 ()
      in
      for _ = 1 to 200 do
        let x =
          Array.init 2 (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0)
        in
        checkb "margin >= 0 iff predict" (Fixed_classifier.predict clf x)
          (Fixed_classifier.margin clf x >= 0.0)
      done)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Gradcheck + Logreg                                                  *)
(* ------------------------------------------------------------------ *)

let test_gradcheck_catches_wrong_gradient () =
  let f x = x.(0) *. x.(0) in
  let good = Gradcheck_helpers.check_grad ~f ~grad:(fun x -> [| 2.0 *. x.(0) |]) [| 1.5 |] in
  checkb "correct gradient passes" true (good < 1e-6);
  let bad = Gradcheck_helpers.check_grad ~f ~grad:(fun x -> [| x.(0) |]) [| 1.5 |] in
  checkb "wrong gradient flagged" true (bad > 1e-2)

let test_logreg_loss_oracle_derivatives () =
  (* Finite-difference the hand-derived gradient and Hessian. *)
  let rng = Stats.Rng.create 50 in
  let n = 12 and m = 3 in
  let features =
    Array.init n (fun _ ->
        Array.init m (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
  in
  let labels = Array.init n (fun i -> i mod 2 = 0) in
  let oracle = Logreg.loss_oracle ~lambda:0.3 features labels in
  let theta =
    Array.init (m + 1) (fun _ -> Stats.Rng.uniform rng ~lo:(-0.5) ~hi:0.5)
  in
  match Optim.Gradcheck.check_oracle oracle theta with
  | None -> Alcotest.fail "oracle rejected interior point"
  | Some r ->
      checkb "gradient matches finite differences" true
        (r.Optim.Gradcheck.max_grad_error < 1e-6);
      checkb "hessian matches finite differences" true
        (r.Optim.Gradcheck.max_hess_error < 1e-5)

let test_logreg_separates_easy_data () =
  let ds = easy_dataset 51 200 in
  let a, b = Datasets.Dataset.class_split ds in
  let model = Logreg.train a b in
  let errors = ref 0 in
  Array.iteri
    (fun i row ->
      if Logreg.predict model row <> ds.Datasets.Dataset.labels.(i) then
        incr errors)
    ds.Datasets.Dataset.features;
  checkb "near zero error" true (!errors < 5)

let test_logreg_loss_decreases_with_training () =
  let ds = easy_dataset 52 100 in
  let a, b = Datasets.Dataset.class_split ds in
  let trained = Logreg.train a b in
  let untrained = Logreg.train ~max_iter:0 a b in
  checkb "training lowers the loss" true
    (Logreg.loss trained a b < Logreg.loss untrained a b)

let test_logreg_fixed_pipeline () =
  let ds = easy_dataset 53 150 in
  let fmt = Qformat.make ~k:2 ~f:4 in
  let plain = Logreg.train_pipeline ~fmt ~swept:false ds in
  let swept = Logreg.train_pipeline ~fmt ~swept:true ds in
  checkb "plain rounding works on easy data" true
    (Eval.error_fixed plain ds < 0.05);
  checkb "swept no worse than plain on training data" true
    (Eval.error_fixed swept ds <= Eval.error_fixed plain ds +. 1e-9)

let test_logreg_regularisation_shrinks () =
  let ds = easy_dataset 54 100 in
  let a, b = Datasets.Dataset.class_split ds in
  let light = Logreg.train ~lambda:1e-4 a b in
  let heavy = Logreg.train ~lambda:10.0 a b in
  checkb "heavier lambda gives smaller weights" true
    (Linalg.Vec.norm2 heavy.Logreg.w < Linalg.Vec.norm2 light.Logreg.w)

(* ------------------------------------------------------------------ *)
(* Hetero_classifier / Bit_alloc                                       *)
(* ------------------------------------------------------------------ *)

let test_hetero_of_uniform_equivalent () =
  (* Embedding a uniform classifier must be behaviourally identical. *)
  let rng = Stats.Rng.create 40 in
  let fmt = Qformat.make ~k:2 ~f:4 in
  let clf =
    Fixed_classifier.of_weights ~fmt ~scaling:(Scaling.of_exponents [| 1; 0; 2 |])
      ~weights:[| 0.75; -1.25; 0.5 |] ~threshold:0.125 ()
  in
  let h = Hetero_classifier.of_uniform clf in
  for _ = 1 to 300 do
    let x = Array.init 3 (fun _ -> Stats.Rng.uniform rng ~lo:(-4.0) ~hi:4.0) in
    checkb "same prediction" (Fixed_classifier.predict clf x)
      (Hetero_classifier.predict h x);
    checkb "same projection" true
      (Fixedpoint.Fx.equal
         (Fixed_classifier.project clf x)
         (Hetero_classifier.project h x))
  done

let test_hetero_narrow_weight_quantizes () =
  (* A weight stored with fewer fractional bits must behave as its
     coarser rounding. *)
  let acc_fmt = Qformat.make ~k:2 ~f:6 in
  let narrow = Qformat.make ~k:2 ~f:1 in
  let h =
    Hetero_classifier.create ~acc_fmt
      ~formats:[| narrow |]
      ~weights:[| 0.8 |] (* rounds to 1.0 on the f=1 grid *)
      ~threshold:0.0 ~scaling:(Scaling.identity 1) ()
  in
  Alcotest.(check (array (float 1e-12)))
    "coarse value" [| 1.0 |] (Hetero_classifier.weights h);
  Alcotest.(check (array int)) "bits" [| 3 |] (Hetero_classifier.weight_bits h);
  checki "total bits" 3 (Hetero_classifier.total_weight_bits h);
  (* projection of x = 0.5: 1.0 * 0.5 = 0.5 in the accumulator format *)
  checkf 1e-12 "projection" 0.5
    (Fixedpoint.Fx.to_float (Hetero_classifier.project h [| 0.5 |]))

let test_hetero_multiplier_cost () =
  let acc_fmt = Qformat.make ~k:2 ~f:6 in
  let h =
    Hetero_classifier.create ~acc_fmt
      ~formats:[| Qformat.make ~k:2 ~f:2; Qformat.make ~k:2 ~f:6 |]
      ~weights:[| 0.5; 0.5 |] ~threshold:0.0 ~scaling:(Scaling.identity 2) ()
  in
  (* (4 + 8) * 8 = 96 partial products *)
  checkf 1e-12 "multiplier cost" 96.0 (Hetero_classifier.multiplier_cost h)

let test_bit_alloc_saves_bits_and_respects_tolerance () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:6) (small_scatter ()) in
  match Lda_fp.solve ~config:Lda_fp.quick_config pb with
  | None -> Alcotest.fail "no solver outcome"
  | Some o -> (
      match Bit_alloc.allocate ~max_cost_increase:0.10 pb o.Lda_fp.w with
      | None -> Alcotest.fail "allocation failed on a feasible start"
      | Some a ->
          checkb "saves at least one bit" true (a.Bit_alloc.bits_saved > 0);
          checkb "cost within tolerance" true
            (a.Bit_alloc.cost <= a.Bit_alloc.start_cost *. 1.10 +. 1e-12);
          checkb "weights still feasible" true
            (Ldafp_problem.feasible pb a.Bit_alloc.weights);
          (* every assigned format is no wider than the base *)
          Array.iter
            (fun f ->
              checkb "not wider than base" true
                (Qformat.word_length f
                <= Qformat.word_length pb.Ldafp_problem.fmt))
            a.Bit_alloc.formats)

let test_bit_alloc_zero_tolerance_keeps_feasible () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:5) (small_scatter ()) in
  match Ldafp_heuristics.seed_incumbent pb with
  | None -> Alcotest.fail "no seed"
  | Some (w, c) -> (
      match Bit_alloc.allocate ~max_cost_increase:0.0 pb w with
      | None -> Alcotest.fail "allocation failed"
      | Some a ->
          (* zero tolerance: cost must not increase at all *)
          checkb "cost unchanged" true (a.Bit_alloc.cost <= c +. 1e-12))

let test_bit_alloc_rejects_infeasible_start () =
  let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:4) (small_scatter ()) in
  checkb "off-grid start rejected" true
    (Bit_alloc.allocate pb [| 0.3; 0.3 |] = None)

let test_bit_alloc_classifier_runs () =
  let ds = easy_dataset 41 150 in
  let fmt = Qformat.make ~k:2 ~f:6 in
  let prep = Pipeline.prepare ~fmt ds in
  let pb = Ldafp_problem.build ~fmt prep.Pipeline.scatter in
  match Lda_fp.solve ~config:Lda_fp.quick_config pb with
  | None -> Alcotest.fail "no outcome"
  | Some o -> (
      match Bit_alloc.allocate pb o.Lda_fp.w with
      | None -> Alcotest.fail "no allocation"
      | Some a ->
          let h = Bit_alloc.classifier ~prepared:prep a in
          let errors = ref 0 in
          Array.iteri
            (fun i row ->
              if
                Hetero_classifier.predict h row
                <> ds.Datasets.Dataset.labels.(i)
              then incr errors)
            ds.Datasets.Dataset.features;
          checkb "classifies easy data" true
            (float_of_int !errors
             /. float_of_int (Datasets.Dataset.n_trials ds)
            < 0.05))

(* ------------------------------------------------------------------ *)
(* Quant_analysis                                                      *)
(* ------------------------------------------------------------------ *)

let test_quant_analysis_scaling_in_q () =
  (* Both noise terms are linear in the ulp: halving F doubles them. *)
  let scatter = small_scatter () in
  let w = [| 1.0; -0.5 |] in
  let r6 = Quant_analysis.analyze ~scatter ~fmt:(Qformat.make ~k:2 ~f:6) w in
  let r5 = Quant_analysis.analyze ~scatter ~fmt:(Qformat.make ~k:2 ~f:5) w in
  checkf 1e-12 "input rms doubles" (2.0 *. r6.Quant_analysis.input_noise_rms)
    r5.Quant_analysis.input_noise_rms;
  checkf 1e-12 "product worst doubles"
    (2.0 *. r6.Quant_analysis.product_noise_worst)
    r5.Quant_analysis.product_noise_worst;
  checkb "sqnr halves-ish" true
    (r5.Quant_analysis.sqnr < r6.Quant_analysis.sqnr)

let test_quant_analysis_formulas () =
  let scatter = small_scatter () in
  let fmt = Qformat.make ~k:2 ~f:4 in
  let q = Qformat.ulp fmt in
  let w = [| 3.0; -4.0 |] in
  let r = Quant_analysis.analyze ~scatter ~fmt w in
  checkf 1e-12 "input worst = |w|_1 q/2" (7.0 *. q /. 2.0)
    r.Quant_analysis.input_noise_worst;
  checkf 1e-12 "input rms = |w|_2 q/sqrt12" (5.0 *. q /. sqrt 12.0)
    r.Quant_analysis.input_noise_rms;
  checkf 1e-12 "product worst = M q/2" (2.0 *. q /. 2.0)
    r.Quant_analysis.product_noise_worst;
  checkb "extra error nonnegative" true
    (r.Quant_analysis.predicted_extra_error >= 0.0)

let test_quant_analysis_predicts_more_error_for_big_weights () =
  (* The paper's mechanism: same direction, bigger norm relative to the
     separation = lower SQNR. Compare w against 10w with a separation
     artificially fixed by scaling the scatter means... simpler: compare
     an aligned weight vector to one dominated by a cancelling pair. *)
  let scatter = small_scatter () in
  let fmt = Qformat.make ~k:2 ~f:4 in
  let aligned = Quant_analysis.analyze ~scatter ~fmt [| 1.0; 0.0 |] in
  let cancelling = Quant_analysis.analyze ~scatter ~fmt [| 0.05; 1.9 |] in
  checkb "cancelling direction has worse sqnr" true
    (cancelling.Quant_analysis.sqnr < aligned.Quant_analysis.sqnr)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_greedy_feasible =
  QCheck.Test.make ~name:"greedy rounding always feasible or None" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let gen off =
        Array.init 10 (fun _ ->
            [|
              off +. Stats.Sampler.std_normal rng;
              0.7 *. Stats.Sampler.std_normal rng;
              0.4 *. Stats.Sampler.std_normal rng;
            |])
      in
      let scatter = Stats.Scatter.of_data (gen 1.0) (gen (-1.0)) in
      let pb = Ldafp_problem.build ~fmt:(Qformat.make ~k:2 ~f:3) scatter in
      match Greedy_round.train pb with
      | None -> true
      | Some (w, c) ->
          Ldafp_problem.feasible pb w
          && Float.abs (c -. Ldafp_problem.cost pb w) < 1e-9)

let prop_auc_invariant_to_monotone_transform =
  QCheck.Test.make ~name:"AUC invariant under monotone score transforms"
    ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Stats.Rng.create seed in
      let n = 30 in
      let labels = Array.init n (fun i -> i mod 2 = 0) in
      let scores =
        Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
      in
      let roc1 = Eval.roc_of_scores ~scores ~labels in
      let transformed = Array.map (fun s -> exp (2.0 *. s) +. 5.0) scores in
      let roc2 = Eval.roc_of_scores ~scores:transformed ~labels in
      Float.abs (roc1.Eval.auc -. roc2.Eval.auc) < 1e-12)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_greedy_feasible; prop_auc_invariant_to_monotone_transform ]

let () =
  Alcotest.run "extensions"
    [
      ( "greedy_round",
        [
          Alcotest.test_case "feasible" `Quick test_greedy_produces_feasible;
          Alcotest.test_case "easy data" `Quick
            test_greedy_never_worse_than_chance_on_easy_data;
          Alcotest.test_case "beats conventional at 4 bits" `Slow
            test_greedy_between_conventional_and_optimal;
          Alcotest.test_case "on grid" `Quick test_greedy_weights_on_grid;
        ] );
      ( "wordlength",
        [
          Alcotest.test_case "minimal" `Quick test_wordlength_minimal;
          Alcotest.test_case "cheapest within" `Quick
            test_wordlength_cheapest_within;
          Alcotest.test_case "reduction ratio" `Quick test_wordlength_reduction;
          Alcotest.test_case "sweep end-to-end" `Quick
            test_wordlength_sweep_end_to_end;
        ] );
      ( "multiclass",
        [
          Alcotest.test_case "validation" `Quick
            test_multiclass_create_validation;
          Alcotest.test_case "pairwise" `Quick test_multiclass_pairwise;
          Alcotest.test_case "train/predict" `Quick
            test_multiclass_train_predict;
          Alcotest.test_case "failure propagates" `Quick
            test_multiclass_training_failure_propagates;
        ] );
      ( "gradcheck/logreg",
        [
          Alcotest.test_case "gradcheck discriminates" `Quick
            test_gradcheck_catches_wrong_gradient;
          Alcotest.test_case "loss oracle derivatives" `Quick
            test_logreg_loss_oracle_derivatives;
          Alcotest.test_case "separates easy data" `Quick
            test_logreg_separates_easy_data;
          Alcotest.test_case "loss decreases" `Quick
            test_logreg_loss_decreases_with_training;
          Alcotest.test_case "fixed pipeline" `Quick test_logreg_fixed_pipeline;
          Alcotest.test_case "regularisation shrinks" `Quick
            test_logreg_regularisation_shrinks;
        ] );
      ( "hetero/bit_alloc",
        [
          Alcotest.test_case "uniform embedding equivalent" `Quick
            test_hetero_of_uniform_equivalent;
          Alcotest.test_case "narrow weight quantises" `Quick
            test_hetero_narrow_weight_quantizes;
          Alcotest.test_case "multiplier cost" `Quick
            test_hetero_multiplier_cost;
          Alcotest.test_case "allocation saves bits" `Quick
            test_bit_alloc_saves_bits_and_respects_tolerance;
          Alcotest.test_case "zero tolerance" `Quick
            test_bit_alloc_zero_tolerance_keeps_feasible;
          Alcotest.test_case "rejects infeasible" `Quick
            test_bit_alloc_rejects_infeasible_start;
          Alcotest.test_case "classifier runs" `Quick
            test_bit_alloc_classifier_runs;
        ] );
      ( "quant_analysis",
        [
          Alcotest.test_case "linear in q" `Quick
            test_quant_analysis_scaling_in_q;
          Alcotest.test_case "closed forms" `Quick test_quant_analysis_formulas;
          Alcotest.test_case "cancelling weights hurt" `Quick
            test_quant_analysis_predicts_more_error_for_big_weights;
        ] );
      ( "roc",
        [
          Alcotest.test_case "perfect" `Quick test_roc_perfect_separation;
          Alcotest.test_case "reversed" `Quick test_roc_reversed;
          Alcotest.test_case "ties" `Quick test_roc_random_is_half;
          Alcotest.test_case "endpoints/monotone" `Quick
            test_roc_endpoints_and_monotonicity;
          Alcotest.test_case "fixed classifier" `Quick
            test_roc_fixed_classifier;
          Alcotest.test_case "validation" `Quick test_roc_validation;
          Alcotest.test_case "margin sign" `Quick
            test_margin_sign_matches_predict;
        ] );
      ("properties", qcheck_tests);
    ]
