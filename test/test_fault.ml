(* Fault tolerance of the branch-and-bound driver: oracle failure
   containment, checkpoint/resume, fault injection, and the deadlock
   regressions.  The QCheck iteration counts scale with the
   LDAFP_FAULT_COUNT environment variable so CI can run a heavier pass
   than the default developer loop. *)

open Optim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf tol msg = Alcotest.(check (float tol)) msg

let qcheck_count default =
  match Sys.getenv_opt "LDAFP_FAULT_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* Same toy problem as the core Bnb tests: minimise a convex quadratic
   over an integer interval; the bound is the continuous minimum, so the
   search is exact and small enough to brute-force. *)
let integer_quadratic_oracle target =
  let cost x = (x -. target) ** 2.0 in
  {
    Bnb.bound =
      (fun (lo, hi) ->
        if lo > hi then None
        else
          let cont =
            Float.max (float_of_int lo) (Float.min (float_of_int hi) target)
          in
          let lower = cost cont in
          let cand_x = int_of_float (Float.round cont) in
          let cand_x = max lo (min hi cand_x) in
          Some
            { Bnb.lower; candidate = Some (cand_x, cost (float_of_int cand_x)) });
    branch =
      (fun (lo, hi) ->
        if lo >= hi then []
        else
          let mid = (lo + hi) asr 1 in
          [ (lo, mid); (mid + 1, hi) ]);
  }

let cost_of target x = (float_of_int x -. target) ** 2.0

(* Fallback lower bound for the toy problem: the cost is a square, so 0
   is always certified.  Deliberately weak — exactly the role the
   interval-arithmetic fallback plays for the LDA-FP oracle. *)
let weak_fallback _region = 0.0

let retrying_faults =
  { Bnb.default_faults with fallback_bound = Some weak_fallback }

(* Run [f] on a helper domain and poll for completion: if the search
   deadlocks, the test fails after [seconds] instead of hanging the
   suite (the stuck domain is killed when the test process exits). *)
let run_with_timeout ~seconds f =
  let result = Atomic.make None in
  let _watched : unit Domain.t =
    Domain.spawn (fun () -> Atomic.set result (Some (f ())))
  in
  let t0 = Unix.gettimeofday () in
  let rec wait () =
    match Atomic.get result with
    | Some r -> Some r
    | None ->
        if Unix.gettimeofday () -. t0 > seconds then None
        else begin
          Unix.sleepf 0.02;
          wait ()
        end
  in
  wait ()

let temp_checkpoint () =
  Filename.temp_file "ldafp-test-checkpoint" ".bnb"

(* ------------------------------------------------------------------ *)
(* Fault classification                                                *)
(* ------------------------------------------------------------------ *)

let test_fault_containable () =
  checkb "ordinary exception contained" true
    (Fault.containable (Failure "solver"));
  checkb "Invalid_argument contained" true
    (Fault.containable (Invalid_argument "x"));
  checkb "Out_of_memory not contained" false (Fault.containable Out_of_memory);
  checkb "Stack_overflow not contained" false
    (Fault.containable Stack_overflow);
  checkb "Sys.Break not contained" false (Fault.containable Sys.Break)

(* ------------------------------------------------------------------ *)
(* Containment in the driver                                           *)
(* ------------------------------------------------------------------ *)

(* Poison exactly one region of the toy search tree. *)
let poisoned_oracle ~poison ~mode target =
  let base = integer_quadratic_oracle target in
  {
    base with
    Bnb.bound =
      (fun region ->
        if region = poison then
          match mode with
          | `Raise -> failwith "poisoned region"
          | `Nan -> Some { Bnb.lower = Float.nan; candidate = None }
        else base.Bnb.bound region);
  }

let test_contained_exception_still_optimal () =
  (* The poisoned region (1, 13) sits on the best-first path to the
     optimum at 7 (regions off that path are pruned before their bound
     is ever called).  It is retried (same failure), then degraded to
     the weak fallback — the search must still reach the true optimum
     by branching the degraded region. *)
  let oracle = poisoned_oracle ~poison:(1, 13) ~mode:`Raise 7.3 in
  let r = Bnb.minimize ~faults:retrying_faults oracle (-25, 25) in
  (match r.Bnb.best with
  | Some (x, c) ->
      checki "optimal integer" 7 x;
      checkf 1e-12 "optimal cost" (cost_of 7.3 7) c
  | None -> Alcotest.fail "no incumbent");
  checkb "failures recorded" true (r.Bnb.stats.Bnb.oracle_failures >= 2);
  checki "degraded once" 1 r.Bnb.stats.Bnb.degraded_bounds;
  checki "retried once" 1 r.Bnb.stats.Bnb.retries;
  checki "nothing dropped" 0 r.Bnb.stats.Bnb.dropped_regions

let test_nan_bound_degraded () =
  let oracle = poisoned_oracle ~poison:(1, 13) ~mode:`Nan 7.3 in
  let r = Bnb.minimize ~faults:retrying_faults oracle (-25, 25) in
  (match r.Bnb.best with
  | Some (x, _) -> checki "optimal integer" 7 x
  | None -> Alcotest.fail "no incumbent");
  checki "degraded once" 1 r.Bnb.stats.Bnb.degraded_bounds

let test_drop_policy_counts () =
  (* No retries, no fallback: the poisoned region is dropped and the
     search continues on the rest of the tree.  The optimum lives at 7,
     far from the poisoned leaf, so it must still be found. *)
  let oracle = poisoned_oracle ~poison:(1, 13) ~mode:`Raise 7.3 in
  let faults =
    { Bnb.default_faults with
      policy = { Fault.propagate with reraise = false } }
  in
  let r = Bnb.minimize ~faults oracle (-25, 25) in
  (match r.Bnb.best with
  | Some (x, _) -> checki "optimal integer" 7 x
  | None -> Alcotest.fail "no incumbent");
  checki "dropped once" 1 r.Bnb.stats.Bnb.dropped_regions;
  checki "one failure" 1 r.Bnb.stats.Bnb.oracle_failures

let test_propagate_policy_reraises () =
  let oracle = poisoned_oracle ~poison:(1, 13) ~mode:`Raise 7.3 in
  let faults = { Bnb.default_faults with policy = Fault.propagate } in
  checkb "exception escapes under propagate" true
    (match Bnb.minimize ~faults oracle (-25, 25) with
    | exception Failure _ -> true
    | _ -> false)

let test_branch_failure_contained () =
  let base = integer_quadratic_oracle 7.3 in
  let oracle =
    {
      base with
      Bnb.branch =
        (fun region ->
          if region = (1, 13) then failwith "poisoned branch"
          else base.Bnb.branch region);
    }
  in
  (* Branch failures cannot be degraded (there is no fallback split);
     the region is treated as atomic.  Its own candidate (the rounded
     continuous minimiser) was already surfaced by [bound], so the
     optimum survives. *)
  let r = Bnb.minimize ~faults:retrying_faults oracle (-25, 25) in
  (match r.Bnb.best with
  | Some (x, _) -> checki "optimal integer" 7 x
  | None -> Alcotest.fail "no incumbent");
  checkb "failures recorded" true (r.Bnb.stats.Bnb.oracle_failures >= 1)

(* ------------------------------------------------------------------ *)
(* Retry backoff and the per-expansion budget                          *)
(* ------------------------------------------------------------------ *)

let test_backoff_delay () =
  let p =
    { Fault.default_policy with backoff_base = 1e-3; backoff_cap = 4e-3 }
  in
  checkf 1e-15 "attempt 0 never sleeps" 0.0 (Fault.backoff_delay p ~attempt:0);
  checkf 1e-15 "attempt 1 = base" 1e-3 (Fault.backoff_delay p ~attempt:1);
  checkf 1e-15 "attempt 2 doubles" 2e-3 (Fault.backoff_delay p ~attempt:2);
  checkf 1e-15 "attempt 3 doubles again" 4e-3
    (Fault.backoff_delay p ~attempt:3);
  checkf 1e-15 "attempt 4 capped" 4e-3 (Fault.backoff_delay p ~attempt:4);
  checkf 1e-15 "zero base disables" 0.0
    (Fault.backoff_delay { p with Fault.backoff_base = 0.0 } ~attempt:3)

let test_retry_backoff_charged () =
  (* One poisoned region, one retry: the search must record the sleep it
     paid before that retry. *)
  let oracle = poisoned_oracle ~poison:(1, 13) ~mode:`Raise 7.3 in
  let faults =
    { retrying_faults with
      policy =
        { Fault.default_policy with backoff_base = 2e-3; backoff_cap = 2e-3 }
    }
  in
  let r = Bnb.minimize ~faults oracle (-25, 25) in
  checki "retried once" 1 r.Bnb.stats.Bnb.retries;
  checkb "backoff time recorded" true
    (r.Bnb.stats.Bnb.retry_backoff_seconds >= 2e-3)

let test_retry_budget_exhausted () =
  (* A region that fails every jitter level, with retries allowed per
     failure but only [retry_budget] across its whole expansion: the
     budget must stop the retry ladder early and be counted once. *)
  let oracle = poisoned_oracle ~poison:(1, 13) ~mode:`Raise 7.3 in
  let faults =
    { retrying_faults with
      policy =
        { Fault.default_policy with
          max_retries = 5; retry_budget = 2; backoff_base = 0.0 }
    }
  in
  let r = Bnb.minimize ~faults oracle (-25, 25) in
  (match r.Bnb.best with
  | Some (x, _) -> checki "optimum still found" 7 x
  | None -> Alcotest.fail "no incumbent");
  checki "retries capped by the budget" 2 r.Bnb.stats.Bnb.retries;
  checki "exhaustion counted once" 1 r.Bnb.stats.Bnb.retry_budget_exhausted;
  checki "region degraded, not dropped" 1 r.Bnb.stats.Bnb.degraded_bounds

(* ------------------------------------------------------------------ *)
(* Bounded-memory frontier                                             *)
(* ------------------------------------------------------------------ *)

(* A deliberately unprunable oracle: trivial lower bound, candidates
   only at singletons — nothing prunes, so the frontier grows with the
   tree and a memory cap must shed.  A shed region may well hold the
   optimum; the promise under test is that the reported bound stays
   below it regardless. *)
let unprunable_oracle target =
  let cost x = (x -. target) ** 2.0 in
  {
    Bnb.bound =
      (fun (lo, hi) ->
        if lo > hi then None
        else
          Some
            {
              Bnb.lower = 0.0;
              candidate =
                (if lo = hi then Some (lo, cost (float_of_int lo)) else None);
            });
    branch =
      (fun (lo, hi) ->
        if lo >= hi then []
        else
          let mid = (lo + hi) asr 1 in
          [ (lo, mid); (mid + 1, hi) ]);
  }

let test_frontier_shed_stays_sound () =
  let target = 7.3 in
  let params =
    { Bnb.default_params with
      max_frontier = 8; rel_gap = 0.0; abs_gap = 0.0 }
  in
  let r = Bnb.minimize ~params (unprunable_oracle target) (-25, 25) in
  checkb "shedding occurred" true (r.Bnb.stats.Bnb.frontier_shed > 0);
  (* Anytime soundness: dropped nodes were never explored, so the
     reported bound must fold their best key in and stay below the true
     optimal cost — and below whatever incumbent was kept. *)
  checkb "bound below the true optimum" true
    (r.Bnb.bound <= cost_of target 7 +. 1e-12);
  (match r.Bnb.best with
  | Some (_, c) ->
      checkb "bound below the incumbent" true (r.Bnb.bound <= c +. 1e-12)
  | None -> Alcotest.fail "no incumbent");
  checkb "shedding does not invalidate certification" true
    r.Bnb.stats.Bnb.certified_sound;
  (* No cap: nothing sheds, and the exact search closes as usual. *)
  let r0 =
    Bnb.minimize
      ~params:{ params with Bnb.max_frontier = 0 }
      (unprunable_oracle target) (-25, 25)
  in
  checki "uncapped search sheds nothing" 0 r0.Bnb.stats.Bnb.frontier_shed;
  (match r0.Bnb.best with
  | Some (x, _) -> checki "uncapped search finds the optimum" 7 x
  | None -> Alcotest.fail "uncapped search found no incumbent")

let test_frontier_shed_parallel_sound () =
  let target = 7.3 in
  let params =
    { Bnb.default_params with
      max_frontier = 8; domains = 4; rel_gap = 0.0; abs_gap = 0.0 }
  in
  match
    run_with_timeout ~seconds:30.0 (fun () ->
        Bnb.minimize ~params (unprunable_oracle target) (-25, 25))
  with
  | None -> Alcotest.fail "capped parallel search hung"
  | Some r ->
      checkb "bound below the true optimum" true
        (r.Bnb.bound <= cost_of target 7 +. 1e-12);
      (match r.Bnb.best with
      | Some (_, c) ->
          checkb "bound below the incumbent" true (r.Bnb.bound <= c +. 1e-12)
      | None -> Alcotest.fail "no incumbent")

(* ------------------------------------------------------------------ *)
(* Certified vs trusting pruning                                       *)
(* ------------------------------------------------------------------ *)

(* A toy oracle whose candidates are deliberately poor (the region's hi
   endpoint, never the rounded minimiser): finding the optimum requires
   actually descending into its region, so a mispruned region means a
   wrong answer — unlike [integer_quadratic_oracle], whose every bound
   call hands back a near-optimal candidate for free. *)
let endpoint_candidate_oracle target =
  let cost x = (x -. target) ** 2.0 in
  {
    Bnb.bound =
      (fun (lo, hi) ->
        if lo > hi then None
        else
          let cont =
            Float.max (float_of_int lo) (Float.min (float_of_int hi) target)
          in
          Some
            {
              Bnb.lower = cost cont;
              candidate = Some (hi, cost (float_of_int hi));
            });
    branch =
      (fun (lo, hi) ->
        if lo >= hi then []
        else
          let mid = (lo + hi) asr 1 in
          [ (lo, mid); (mid + 1, hi) ]);
  }

let test_corrupt_primal_trusting_misprunes () =
  let target = 7.3 in
  let base = endpoint_candidate_oracle target in
  let poison = (1, 13) in
  (* A corrupted solver: for the region holding the optimum it reports a
     wildly inflated lower bound, exactly what a stalled primal solve
     whose objective is taken on faith produces. *)
  let lying =
    {
      base with
      Bnb.bound =
        (fun region ->
          if region = poison then
            Some { Bnb.lower = 1e6; candidate = None }
          else base.Bnb.bound region);
    }
  in
  let trusting = Bnb.minimize lying (-25, 25) in
  (match trusting.Bnb.best with
  | Some (x, c) ->
      checkb "trusting search mispruned the optimum" true (x <> 7);
      checkb "and pays for it in cost" true (c > cost_of target 7 +. 1.0)
  | None -> ());
  (* The certified path refuses to hand the driver a bound it could not
     verify: the failure is classified as a certificate fault, degraded
     to the (weak but true) fallback, and the region survives to be
     branched — the optimum is recovered. *)
  let certified =
    {
      base with
      Bnb.bound =
        (fun region ->
          if region = poison then
            raise (Fault.Certificate_error "primal-dual slack excessive")
          else base.Bnb.bound region);
    }
  in
  let r = Bnb.minimize ~faults:retrying_faults certified (-25, 25) in
  (match r.Bnb.best with
  | Some (x, _) -> checki "certified search finds the optimum" 7 x
  | None -> Alcotest.fail "certified search found no incumbent");
  checkb "certificate fallback counted" true
    (r.Bnb.stats.Bnb.cert_fallbacks >= 1);
  checkb "degrading to a certified fallback stays sound" true
    r.Bnb.stats.Bnb.certified_sound

(* ------------------------------------------------------------------ *)
(* Deadlock regressions (parallel driver)                              *)
(* ------------------------------------------------------------------ *)

(* Before containment, an oracle exception killed the worker domain
   without releasing its in-flight slot: the three sibling domains then
   waited forever on a condition variable nobody would ever signal.
   Both failure shapes (exception and NaN bound) must return within the
   watchdog budget at domains = 4. *)
let deadlock_regression mode () =
  let oracle = poisoned_oracle ~poison:(1, 13) ~mode 7.3 in
  match
    run_with_timeout ~seconds:30.0 (fun () ->
        Bnb.minimize
          ~params:{ Bnb.default_params with domains = 4 }
          ~faults:retrying_faults oracle (-25, 25))
  with
  | None -> Alcotest.fail "parallel search deadlocked on a poisoned region"
  | Some r -> (
      match r.Bnb.best with
      | Some (x, _) -> checki "optimal integer" 7 x
      | None -> Alcotest.fail "no incumbent")

let test_deadlock_regression_exception () = deadlock_regression `Raise ()
let test_deadlock_regression_nan () = deadlock_regression `Nan ()

(* ------------------------------------------------------------------ *)
(* Checkpoint file format                                              *)
(* ------------------------------------------------------------------ *)

let sample_state () =
  {
    Checkpoint.fingerprint = "fp-test";
    frontier = [| (1.5, (0, 10)); (2.5, (11, 20)) |];
    incumbent = Some (7, 0.09);
    nodes_explored = 12;
    counters = [ ("oracle_failures", 3); ("retries", 1) ];
    elapsed = 0.25;
  }

let test_checkpoint_roundtrip () =
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let state = sample_state () in
      Checkpoint.save ~path state;
      let loaded : (int * int, int) Checkpoint.state =
        Checkpoint.load ~expect_fingerprint:"fp-test" ~path ()
      in
      checki "nodes" 12 loaded.Checkpoint.nodes_explored;
      checkf 1e-12 "elapsed" 0.25 loaded.Checkpoint.elapsed;
      checki "frontier size" 2 (Array.length loaded.Checkpoint.frontier);
      checkb "frontier entry" true (loaded.Checkpoint.frontier.(0) = (1.5, (0, 10)));
      checkb "incumbent" true (loaded.Checkpoint.incumbent = Some (7, 0.09));
      checki "named counter" 3 (Checkpoint.counter loaded "oracle_failures");
      checki "absent counter is 0" 0 (Checkpoint.counter loaded "no_such"))

let test_checkpoint_rejects_fingerprint_mismatch () =
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Checkpoint.save ~path (sample_state ());
      checkb "mismatched fingerprint rejected" true
        (match
           (Checkpoint.load ~expect_fingerprint:"other-problem" ~path ()
             : (int * int, int) Checkpoint.state)
         with
        | exception Checkpoint.Corrupt _ -> true
        | _ -> false))

let test_checkpoint_rejects_garbage () =
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "not a checkpoint at all\n";
      close_out oc;
      checkb "garbage rejected" true
        (match
           (Checkpoint.load ~path () : (int * int, int) Checkpoint.state)
         with
        | exception Checkpoint.Corrupt _ -> true
        | _ -> false))

let test_checkpoint_rejects_truncation () =
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Checkpoint.save ~path (sample_state ());
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let prefix = really_input_string ic (len - 7) in
      close_in ic;
      let oc = open_out_bin path in
      output_string oc prefix;
      close_out oc;
      checkb "truncated payload rejected" true
        (match
           (Checkpoint.load ~expect_fingerprint:"fp-test" ~path ()
             : (int * int, int) Checkpoint.state)
         with
        | exception Checkpoint.Corrupt _ -> true
        | _ -> false))

let test_checkpoint_missing_file () =
  checkb "missing file raises Corrupt" true
    (match
       (Checkpoint.load ~path:"/nonexistent/dir/ck.bnb" ()
         : (int * int, int) Checkpoint.state)
     with
    | exception Checkpoint.Corrupt _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume through the driver                                *)
(* ------------------------------------------------------------------ *)

let test_bnb_kill_and_resume () =
  (* A wide root keeps the uninterrupted search deep enough that the
     node budget genuinely kills it mid-tree. *)
  let target = 713.3 in
  let root = (-2000, 2000) in
  let exact_params =
    { Bnb.default_params with rel_gap = 0.0; abs_gap = 0.0 }
  in
  let uninterrupted =
    Bnb.minimize ~params:exact_params (integer_quadratic_oracle target) root
  in
  let kill_at = uninterrupted.Bnb.nodes_explored / 2 in
  checkb "search is deep enough to kill" true (kill_at >= 1);
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      (* Phase 1: kill via the node budget mid-search. *)
      let killed =
        Bnb.minimize
          ~params:{ exact_params with max_nodes = kill_at }
          ~checkpointing:(Bnb.checkpointing ~fingerprint:"toy-713.3" path)
          (integer_quadratic_oracle target)
          root
      in
      checkb "stopped on the node budget" true
        (killed.Bnb.stop_reason = Bnb.Node_budget);
      checkb "checkpoint written on stop" true (Sys.file_exists path);
      (* Phase 2: resume with the full budget. *)
      let state : ((int * int), int) Checkpoint.state =
        Checkpoint.load ~expect_fingerprint:"toy-713.3" ~path ()
      in
      checki "nodes restored" kill_at state.Checkpoint.nodes_explored;
      let resumed =
        Bnb.resume ~params:exact_params (integer_quadratic_oracle target) state
      in
      checkb "resumed run completes" true
        (match resumed.Bnb.stop_reason with
        | Bnb.Proved_optimal | Bnb.Gap_reached -> true
        | _ -> false);
      checkb "node budget spans the restart" true
        (resumed.Bnb.nodes_explored > kill_at);
      match (uninterrupted.Bnb.best, resumed.Bnb.best) with
      | Some (xu, cu), Some (xr, cr) ->
          checki "same incumbent" xu xr;
          checkf 1e-12 "same cost" cu cr
      | _ -> Alcotest.fail "missing incumbent")

let test_bnb_periodic_checkpoint () =
  (* [every_nodes = 2] on a weak-bound search: the file must exist while
     the search is still mid-tree (verified post-hoc by stopping on a
     budget larger than the cadence). *)
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let r =
        Bnb.minimize
          ~params:{ Bnb.default_params with max_nodes = 9; rel_gap = 0.0;
                    abs_gap = 0.0 }
          ~checkpointing:
            (Bnb.checkpointing ~every_nodes:2 ~save_on_stop:false
               ~fingerprint:"periodic" path)
          (integer_quadratic_oracle 3.3)
          (-25, 25)
      in
      checkb "periodic snapshot written" true (Sys.file_exists path);
      let state : ((int * int), int) Checkpoint.state =
        Checkpoint.load ~expect_fingerprint:"periodic" ~path ()
      in
      checkb "snapshot from mid-search" true
        (state.Checkpoint.nodes_explored <= r.Bnb.nodes_explored);
      checkb "snapshot cadence respected" true
        (state.Checkpoint.nodes_explored mod 2 = 0))

let test_bnb_interrupt_stops_and_saves () =
  let calls = Atomic.make 0 in
  let interrupt () = Atomic.fetch_and_add calls 1 >= 1 in
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let r =
        Bnb.minimize
          ~params:{ Bnb.default_params with rel_gap = 0.0; abs_gap = 0.0 }
          ~checkpointing:(Bnb.checkpointing ~fingerprint:"intr" path)
          ~interrupt
          (integer_quadratic_oracle 713.3)
          (-2000, 2000)
      in
      checkb "stop reason is Interrupted" true
        (r.Bnb.stop_reason = Bnb.Interrupted);
      checkb "interrupt snapshot written" true (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* LDA-FP level checkpoint/resume                                      *)
(* ------------------------------------------------------------------ *)

let small_scatter () =
  let a =
    [| [| 0.5; 0.1 |]; [| 0.7; -0.1 |]; [| 0.6; 0.2 |]; [| 0.4; -0.2 |] |]
  in
  let b =
    [| [| -0.5; 0.15 |]; [| -0.7; -0.15 |]; [| -0.6; 0.1 |]; [| -0.4; -0.1 |] |]
  in
  Stats.Scatter.of_data a b

let exact_lda_config max_nodes =
  let open Ldafp_core in
  {
    Lda_fp.quick_config with
    bnb_params =
      { Optim.Bnb.default_params with max_nodes; rel_gap = 0.0; abs_gap = 0.0 };
  }

let test_ldafp_kill_and_resume () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let uninterrupted =
    match Lda_fp.solve ~config:(exact_lda_config 4000) pb with
    | Some o -> o
    | None -> Alcotest.fail "uninterrupted run found no solution"
  in
  checkb "uninterrupted run completed" true
    (uninterrupted.Lda_fp.diagnostics.Lda_fp.stop_reason
     = Optim.Bnb.Proved_optimal);
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let sliced_config budget =
        { (exact_lda_config budget) with
          Lda_fp.checkpoint = Some (Lda_fp.checkpoint_spec ~resume:true path) }
      in
      (* First invocation: no file yet, trains from scratch, killed by
         the tiny node budget, snapshots.  Each restart raises the
         budget by another slice ([max_nodes] counts the restored nodes
         too — the budget spans the whole search) and continues where
         the previous run was killed, until the search completes. *)
      let rec train_in_slices budget guard =
        if guard = 0 then Alcotest.fail "resume loop did not converge"
        else
          match Lda_fp.solve ~config:(sliced_config budget) pb with
          | None -> Alcotest.fail "killed run lost the incumbent"
          | Some o
            when o.Lda_fp.diagnostics.Lda_fp.stop_reason
                 = Optim.Bnb.Node_budget ->
              checkb "checkpoint written on budget stop" true
                (Sys.file_exists path);
              train_in_slices (budget + 6) (guard - 1)
          | Some o -> o
      in
      let resumed = train_in_slices 6 2000 in
      checkb "resumed run completed" true
        (resumed.Lda_fp.diagnostics.Lda_fp.stop_reason
         = Optim.Bnb.Proved_optimal);
      checkf 1e-12 "same incumbent cost across kill/resume chain"
        uninterrupted.Lda_fp.cost resumed.Lda_fp.cost)

let test_ldafp_resume_rejects_other_problem () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let other = Ldafp_problem.build ~rho:0.95 ~fmt (small_scatter ()) in
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let config =
        { (exact_lda_config 6) with
          Lda_fp.checkpoint = Some (Lda_fp.checkpoint_spec ~resume:true path) }
      in
      ignore (Lda_fp.solve ~config pb);
      checkb "checkpoint written" true (Sys.file_exists path);
      checkb "resume against a different problem is rejected" true
        (match Lda_fp.solve ~config other with
        | exception Optim.Checkpoint.Corrupt _ -> true
        | _ -> false))

(* Warm starts under contained faults.  The retry hook invalidates any
   point cached on a node whose solve failed, so a retried bound is a
   deterministic cold solve — with the same injection seed, a warm and
   a cold search must therefore still coincide exactly.  If a stale
   warm start leaked into a retry, the two searches would diverge. *)
let test_ldafp_faults_invalidate_warm_starts () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let solve warm_start =
    let config =
      {
        (exact_lda_config 400) with
        Lda_fp.warm_start;
        inject_faults =
          Some
            (Fault_inject.config ~seed:11 ~bound_exn_prob:0.10
               ~bound_nan_prob:0.10 ());
      }
    in
    Lda_fp.solve ~config pb
  in
  match (solve true, solve false) with
  | Some warm, Some cold ->
      let ws = warm.Lda_fp.diagnostics.Lda_fp.search in
      let cs = cold.Lda_fp.diagnostics.Lda_fp.search in
      checkb "faults actually injected" true (ws.Bnb.oracle_failures > 0);
      checkb "warm starts actually used" true (ws.Bnb.warm_start_hits > 0);
      checkf 1e-12 "same incumbent under identical injection"
        cold.Lda_fp.cost warm.Lda_fp.cost;
      checki "same node count under identical injection"
        cold.Lda_fp.diagnostics.Lda_fp.nodes
        warm.Lda_fp.diagnostics.Lda_fp.nodes;
      checki "same failure count" cs.Bnb.oracle_failures
        ws.Bnb.oracle_failures;
      checkb "solution feasible" true (Ldafp_problem.feasible pb warm.Lda_fp.w)
  | _ -> Alcotest.fail "a faulty solve found nothing"

(* Warm-start counters are part of the search statistics and must
   survive a checkpoint/resume chain (old snapshots without the fields
   restore them as zero; new ones carry them forward). *)
let test_ldafp_warm_counters_survive_resume () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let full =
    match Lda_fp.solve ~config:(exact_lda_config 4000) pb with
    | Some o -> o
    | None -> Alcotest.fail "uninterrupted run found no solution"
  in
  let full_hits =
    full.Lda_fp.diagnostics.Lda_fp.search.Bnb.warm_start_hits
  in
  checkb "reference run warm-starts" true (full_hits > 0);
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let sliced_config budget =
        { (exact_lda_config budget) with
          Lda_fp.checkpoint = Some (Lda_fp.checkpoint_spec ~resume:true path) }
      in
      let rec train_in_slices budget guard =
        if guard = 0 then Alcotest.fail "resume loop did not converge"
        else
          match Lda_fp.solve ~config:(sliced_config budget) pb with
          | None -> Alcotest.fail "killed run lost the incumbent"
          | Some o
            when o.Lda_fp.diagnostics.Lda_fp.stop_reason = Bnb.Node_budget ->
              train_in_slices (budget + 6) (guard - 1)
          | Some o -> o
      in
      let resumed = train_in_slices 6 2000 in
      checkf 1e-12 "same incumbent cost" full.Lda_fp.cost resumed.Lda_fp.cost;
      (* The chain explores the same tree, so the cumulative counters
         must match the uninterrupted run's. *)
      checki "warm hits survive the chain" full_hits
        resumed.Lda_fp.diagnostics.Lda_fp.search.Bnb.warm_start_hits;
      checki "phase-I skips survive the chain"
        full.Lda_fp.diagnostics.Lda_fp.search.Bnb.phase1_skipped
        resumed.Lda_fp.diagnostics.Lda_fp.search.Bnb.phase1_skipped)

(* A checkpoint written before the oracle-counter schema existed lacks
   the warm/miss keys; resuming through one restarts those counters from
   zero mid-chain.  The search must say so — the sticky [counters_reset]
   marker — instead of silently reporting a partial warm_hit_rate as if
   it covered the whole run. *)
let test_ldafp_counters_reset_marker () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let config budget =
        {
          (exact_lda_config budget) with
          Lda_fp.checkpoint = Some (Lda_fp.checkpoint_spec ~resume:true path);
        }
      in
      let slice budget =
        match Lda_fp.solve ~config:(config budget) pb with
        | Some o -> o
        | None -> Alcotest.fail "slice found no incumbent"
      in
      let first = slice 6 in
      checkb "fresh run is not flagged" false
        first.Lda_fp.diagnostics.Lda_fp.search.Bnb.counters_reset;
      checkb "first slice stopped on the node budget" true
        (first.Lda_fp.diagnostics.Lda_fp.stop_reason = Bnb.Node_budget);
      (* Rewrite the snapshot as a pre-schema checkpoint looked: same
         frontier and incumbent, warm/miss accounting keys absent. *)
      let st = Checkpoint.load ~path () in
      Checkpoint.save ~path
        {
          st with
          Checkpoint.counters =
            List.filter
              (fun (k, _) -> not (List.mem k Bnb.warm_counter_keys))
              st.Checkpoint.counters;
        };
      let second = slice 12 in
      checkb "resume through a pre-schema snapshot raises the marker" true
        second.Lda_fp.diagnostics.Lda_fp.search.Bnb.counters_reset;
      checkb "second slice stopped on the node budget" true
        (second.Lda_fp.diagnostics.Lda_fp.stop_reason = Bnb.Node_budget);
      (* Sticky: the marker survives later snapshots of the chain even
         though those record every key. *)
      let third = slice 4000 in
      checkb "marker survives later, fully-keyed snapshots" true
        third.Lda_fp.diagnostics.Lda_fp.search.Bnb.counters_reset)

(* Certificate counters (and the soundness flag) ride the same
   checkpoint schema: a kill/resume chain must report the same
   cumulative certificate accounting as the uninterrupted run, still
   marked sound. *)
let test_ldafp_cert_counters_survive_resume () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let full =
    match Lda_fp.solve ~config:(exact_lda_config 4000) pb with
    | Some o -> o
    | None -> Alcotest.fail "uninterrupted run found no solution"
  in
  let fs = full.Lda_fp.diagnostics.Lda_fp.search in
  checkb "reference run certifies its bounds" true (fs.Bnb.cert_verified > 0);
  checkb "reference run is sound" true fs.Bnb.certified_sound;
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let sliced_config budget =
        { (exact_lda_config budget) with
          Lda_fp.checkpoint = Some (Lda_fp.checkpoint_spec ~resume:true path) }
      in
      let rec train_in_slices budget guard =
        if guard = 0 then Alcotest.fail "resume loop did not converge"
        else
          match Lda_fp.solve ~config:(sliced_config budget) pb with
          | None -> Alcotest.fail "killed run lost the incumbent"
          | Some o
            when o.Lda_fp.diagnostics.Lda_fp.stop_reason = Bnb.Node_budget ->
              train_in_slices (budget + 6) (guard - 1)
          | Some o -> o
      in
      let resumed = train_in_slices 6 2000 in
      let rs = resumed.Lda_fp.diagnostics.Lda_fp.search in
      checkf 1e-12 "same incumbent cost" full.Lda_fp.cost resumed.Lda_fp.cost;
      checki "cert_verified survives the chain" fs.Bnb.cert_verified
        rs.Bnb.cert_verified;
      checki "cert_fallbacks survives the chain" fs.Bnb.cert_fallbacks
        rs.Bnb.cert_fallbacks;
      checkb "chain stays certified sound" true rs.Bnb.certified_sound)

(* A snapshot written before the certificate schema (fingerprint without
   [+cert1]) is rejected outright by the fingerprint check; the subtler
   case is a same-schema snapshot whose cert counters were stripped —
   resuming through it must raise the sticky [counters_reset] marker AND
   clear [certified_sound]: some pruning decisions' certification status
   is unknown, so the whole run can no longer claim soundness. *)
let test_ldafp_cert_schema_reset_marker () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let config budget =
        {
          (exact_lda_config budget) with
          Lda_fp.checkpoint = Some (Lda_fp.checkpoint_spec ~resume:true path);
        }
      in
      let slice budget =
        match Lda_fp.solve ~config:(config budget) pb with
        | Some o -> o
        | None -> Alcotest.fail "slice found no incumbent"
      in
      let first = slice 6 in
      checkb "fresh run is certified sound" true
        first.Lda_fp.diagnostics.Lda_fp.search.Bnb.certified_sound;
      let st = Checkpoint.load ~path () in
      Checkpoint.save ~path
        {
          st with
          Checkpoint.counters =
            List.filter
              (fun (k, _) -> not (List.mem k Bnb.cert_counter_keys))
              st.Checkpoint.counters;
        };
      let second = slice 12 in
      checkb "stripped cert keys raise the reset marker" true
        second.Lda_fp.diagnostics.Lda_fp.search.Bnb.counters_reset;
      checkb "and clear certified_sound" false
        second.Lda_fp.diagnostics.Lda_fp.search.Bnb.certified_sound;
      (* Sticky through the rest of the chain, even though every later
         snapshot carries the full schema. *)
      let third = slice 4000 in
      checkb "unsoundness survives later snapshots" false
        third.Lda_fp.diagnostics.Lda_fp.search.Bnb.certified_sound)

(* The --no-certify escape hatch: same incumbent on a healthy solver,
   but the run is flagged as trusting. *)
let test_ldafp_no_certify_flags_unsound () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let solve certify =
    match
      Lda_fp.solve ~config:{ (exact_lda_config 4000) with Lda_fp.certify } pb
    with
    | Some o -> o
    | None -> Alcotest.fail "no solution"
  in
  let certified = solve true and trusting = solve false in
  checkf 1e-12 "same incumbent from a healthy solver"
    certified.Lda_fp.cost trusting.Lda_fp.cost;
  let cs = certified.Lda_fp.diagnostics.Lda_fp.search in
  let ts = trusting.Lda_fp.diagnostics.Lda_fp.search in
  checkb "certified run verifies bounds" true (cs.Bnb.cert_verified > 0);
  checkb "certified run is sound" true cs.Bnb.certified_sound;
  checki "trusting run verifies nothing" 0 ts.Bnb.cert_verified;
  checkb "trusting run is flagged" false ts.Bnb.certified_sound

(* Certificates under injected faults and a kill/resume chain: whatever
   the injection does, a run that ends with [certified_sound] must have
   certified (or certifiably degraded) every pruning decision, and the
   incumbent must match the fault-free reference. *)
let test_ldafp_cert_with_faults_and_resume () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let reference =
    match Lda_fp.solve ~config:(exact_lda_config 4000) pb with
    | Some o -> o
    | None -> Alcotest.fail "reference run found no solution"
  in
  let path = temp_checkpoint () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let faulty budget =
        {
          (exact_lda_config budget) with
          Lda_fp.checkpoint = Some (Lda_fp.checkpoint_spec ~resume:true path);
          inject_faults =
            Some
              (Fault_inject.config ~seed:23 ~bound_exn_prob:0.08
                 ~bound_nan_prob:0.08 ());
        }
      in
      let rec train_in_slices budget guard =
        if guard = 0 then Alcotest.fail "resume loop did not converge"
        else
          match Lda_fp.solve ~config:(faulty budget) pb with
          | None -> Alcotest.fail "killed run lost the incumbent"
          | Some o
            when o.Lda_fp.diagnostics.Lda_fp.stop_reason = Bnb.Node_budget ->
              train_in_slices (budget + 6) (guard - 1)
          | Some o -> o
      in
      let resumed = train_in_slices 6 2000 in
      let rs = resumed.Lda_fp.diagnostics.Lda_fp.search in
      checkb "faults actually injected" true (rs.Bnb.oracle_failures > 0);
      checkb "faulty chain stays certified sound" true rs.Bnb.certified_sound;
      checkf 1e-12 "incumbent matches the fault-free reference"
        reference.Lda_fp.cost resumed.Lda_fp.cost)

(* The warm-start contract: a repaired start changes where the barrier
   starts, never what the search concludes.  Warm and cold runs of the
   same budgeted search must pick the identical incumbent — across
   domain counts (work stealing migrates the inherited points), under
   injected bound faults, and through a kill/resume chain. *)
let prop_ldafp_warm_cold_agree =
  QCheck.Test.make
    ~name:"warm and cold LDA searches pick the same incumbent"
    ~count:(qcheck_count 10)
    QCheck.(quad (int_range 0 1_000_000) (oneofl [ 1; 2; 4 ]) bool bool)
    (fun (seed, domains, inject, resume) ->
      let open Ldafp_core in
      let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
      let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
      let budget = 250 in
      let base warm_start =
        let c = exact_lda_config budget in
        {
          c with
          Lda_fp.warm_start;
          bnb_params = { c.Lda_fp.bnb_params with Bnb.domains };
          inject_faults =
            (* injection seeds are per-run, so a killed/resumed chain
               would see a different fault sequence than the reference —
               keep the two dimensions separate *)
            (if inject && not resume then
               Some
                 (Fault_inject.config ~seed ~bound_exn_prob:0.05
                    ~bound_nan_prob:0.05 ())
             else None);
        }
      in
      let cold = Lda_fp.solve ~config:(base false) pb in
      let warm =
        if not resume then Lda_fp.solve ~config:(base true) pb
        else begin
          let path = temp_checkpoint () in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              Sys.remove path;
              let with_ck budget =
                let c = base true in
                {
                  c with
                  Lda_fp.bnb_params =
                    { c.Lda_fp.bnb_params with Bnb.max_nodes = budget };
                  checkpoint =
                    Some (Lda_fp.checkpoint_spec ~resume:true path);
                }
              in
              (* Kill the warm run mid-search, then resume to the same
                 cumulative budget as the uninterrupted cold one. *)
              ignore (Lda_fp.solve ~config:(with_ck (20 + (seed mod 60))) pb);
              Lda_fp.solve ~config:(with_ck budget) pb)
        end
      in
      match (warm, cold) with
      | Some w, Some c ->
          let wd = w.Lda_fp.diagnostics and cd = c.Lda_fp.diagnostics in
          if w.Lda_fp.cost <> c.Lda_fp.cost then
            QCheck.Test.fail_reportf "warm incumbent %.17g <> cold %.17g"
              w.Lda_fp.cost c.Lda_fp.cost
          else if
            Float.abs (wd.Lda_fp.gap -. cd.Lda_fp.gap)
            > 1e-9 *. (1.0 +. Float.abs cd.Lda_fp.gap)
          then
            QCheck.Test.fail_reportf
              "certified gaps diverge: warm %.17g cold %.17g" wd.Lda_fp.gap
              cd.Lda_fp.gap
          else true
      | None, None -> true
      | _ -> QCheck.Test.fail_report "only one of the runs found an incumbent")

let test_ldafp_interval_fallback_is_conservative () =
  let open Ldafp_core in
  let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
  let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
  let wbox = pb.Ldafp_problem.elem_box in
  let trange = pb.Ldafp_problem.t_root in
  let lb = Ldafp_problem.interval_lower_bound pb ~wbox ~trange in
  checkb "finite and >= 0" true (lb >= 0.0 && Float.is_finite lb);
  (* Conservativeness: no feasible grid point in the box may beat it. *)
  let rng = Stats.Rng.create 7 in
  for _ = 1 to 200 do
    let w =
      Array.map
        (fun iv ->
          let lo = Fixedpoint.Fx_interval.lo iv
          and hi = Fixedpoint.Fx_interval.hi iv in
          Fixedpoint.Qformat.nearest_on_grid fmt
            (Stats.Rng.uniform rng ~lo ~hi))
        wbox
    in
    let t = Ldafp_problem.t_of pb w in
    if Optim.Interval.mem trange t && t <> 0.0 then
      checkb "fallback below every sampled cost" true
        (lb <= Ldafp_problem.cost pb w +. 1e-9)
  done

(* ------------------------------------------------------------------ *)
(* Fault-injection properties                                          *)
(* ------------------------------------------------------------------ *)

let fault_rate_gen =
  QCheck.Gen.(
    map2
      (fun rate seed -> (rate, seed))
      (float_bound_inclusive 0.20)
      (int_bound 1_000_000))

let arb_fault_run =
  QCheck.make
    ~print:(fun (rate, seed, domains, target) ->
      Printf.sprintf "rate=%.3f seed=%d domains=%d target=%.2f" rate seed
        domains target)
    QCheck.Gen.(
      map2
        (fun (rate, seed) (domains, target) -> (rate, seed, domains, target))
        fault_rate_gen
        (pair (oneofl [ 1; 2; 4 ]) (float_range (-20.0) 20.0)))

let prop_faulty_search_terminates =
  QCheck.Test.make ~name:"faulty search terminates with consistent stats"
    ~count:(qcheck_count 30) arb_fault_run
    (fun (rate, seed, domains, target) ->
      let cfg =
        Fault_inject.config ~seed ~bound_exn_prob:(rate /. 3.0)
          ~bound_nan_prob:(rate /. 3.0) ~branch_exn_prob:(rate /. 3.0)
          ~delay_prob:0.05 ~delay_seconds:5e-4 ()
      in
      let oracle, injected =
        Fault_inject.wrap cfg (integer_quadratic_oracle target)
      in
      match
        run_with_timeout ~seconds:60.0 (fun () ->
            Bnb.minimize
              ~params:{ Bnb.default_params with domains }
              ~faults:retrying_faults oracle (-25, 25))
      with
      | None -> QCheck.Test.fail_report "search did not terminate"
      | Some r ->
          let s = r.Bnb.stats in
          (* Every injected failure must be observed, none double
             counted. *)
          if injected () <> s.Bnb.oracle_failures then
            QCheck.Test.fail_reportf "injected %d but recorded %d"
              (injected ()) s.Bnb.oracle_failures
          else begin
            (match r.Bnb.best with
            | Some (x, c) ->
                (* Any incumbent must be a real point of the space with
                   its exact cost — injection may lose work, never
                   fabricate it. *)
                if x < -25 || x > 25 then
                  QCheck.Test.fail_report "incumbent outside the root region";
                if Float.abs (c -. cost_of target x) > 1e-9 then
                  QCheck.Test.fail_report "incumbent cost is not exact"
            | None ->
                (* The toy bound always returns a candidate, so only
                   faulted work can explain an empty result. *)
                if injected () = 0 then
                  QCheck.Test.fail_report "no incumbent without any fault");
            true
          end)

let prop_fault_free_wrap_is_identity =
  QCheck.Test.make ~name:"zero-rate injection changes nothing"
    ~count:(qcheck_count 20)
    QCheck.(float_range (-20.0) 20.0)
    (fun target ->
      let oracle, injected =
        Fault_inject.wrap Fault_inject.none (integer_quadratic_oracle target)
      in
      let plain = Bnb.minimize (integer_quadratic_oracle target) (-25, 25) in
      let wrapped = Bnb.minimize oracle (-25, 25) in
      injected () = 0
      && wrapped.Bnb.stats.Bnb.oracle_failures = 0
      && plain.Bnb.best = wrapped.Bnb.best
      && plain.Bnb.nodes_explored = wrapped.Bnb.nodes_explored)

let prop_resume_reaches_same_incumbent =
  QCheck.Test.make
    ~name:"sequential kill/resume reproduces the uninterrupted incumbent"
    ~count:(qcheck_count 25)
    QCheck.(pair (float_range (-20.0) 20.0) (int_range 1 12))
    (fun (target, kill_after) ->
      let exact = { Bnb.default_params with rel_gap = 0.0; abs_gap = 0.0 } in
      let full =
        Bnb.minimize ~params:exact (integer_quadratic_oracle target) (-25, 25)
      in
      let path = temp_checkpoint () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Sys.remove path;
          let killed =
            Bnb.minimize
              ~params:{ exact with max_nodes = kill_after }
              ~checkpointing:(Bnb.checkpointing ~fingerprint:"prop" path)
              (integer_quadratic_oracle target)
              (-25, 25)
          in
          let final =
            if killed.Bnb.stop_reason = Bnb.Node_budget then begin
              let state : ((int * int), int) Checkpoint.state =
                Checkpoint.load ~expect_fingerprint:"prop" ~path ()
              in
              Bnb.resume ~params:exact (integer_quadratic_oracle target) state
            end
            else killed (* finished before the kill point *)
          in
          match (full.Bnb.best, final.Bnb.best) with
          | Some (_, cf), Some (_, cr) -> Float.abs (cf -. cr) <= 1e-12
          | None, None -> true
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Work-stealing agreement properties                                  *)
(* ------------------------------------------------------------------ *)

(* Retries consult the clean oracle, so every injected bound fault is
   recoverable: no region is ever degraded or dropped, and the search —
   sequential or stolen across any number of domains — must land on the
   fault-free incumbent.  Branch faults are deliberately excluded here:
   a failed branch is treated as atomic (its children are
   unrecoverable), which legitimately changes the reachable tree. *)
let recovering_faults (clean : (int * int, int) Bnb.oracle) =
  {
    Bnb.default_faults with
    retry_bound = Some (fun ~attempt:_ region -> clean.Bnb.bound region);
    fallback_bound = Some weak_fallback;
  }

let prop_stealing_agrees_with_sequential =
  QCheck.Test.make
    ~name:"work-stealing matches the sequential incumbent under injection"
    ~count:(qcheck_count 20) arb_fault_run
    (fun (rate, seed, domains, target) ->
      let clean = integer_quadratic_oracle target in
      let seq = Bnb.minimize clean (-25, 25) in
      let cfg =
        Fault_inject.config ~seed ~bound_exn_prob:(rate /. 2.0)
          ~bound_nan_prob:(rate /. 2.0) ()
      in
      let oracle, injected = Fault_inject.wrap cfg clean in
      match
        run_with_timeout ~seconds:60.0 (fun () ->
            Bnb.minimize
              ~params:{ Bnb.default_params with domains }
              ~faults:(recovering_faults clean) oracle (-25, 25))
      with
      | None -> QCheck.Test.fail_report "stealing search did not terminate"
      | Some par -> (
          if par.Bnb.stats.Bnb.dropped_regions <> 0 then
            QCheck.Test.fail_report "recoverable fault dropped a region"
          else
            match (seq.Bnb.best, par.Bnb.best) with
            | Some (xs, cs), Some (xp, cp) ->
                if xp < -25 || xp > 25 then
                  QCheck.Test.fail_report "incumbent outside the root region"
                else if Float.abs (cp -. cost_of target xp) > 1e-12 then
                  QCheck.Test.fail_report "incumbent cost is not exact"
                else if Float.abs (cs -. cp) > 1e-9 *. (1.0 +. Float.abs cs)
                then
                  QCheck.Test.fail_reportf
                    "sequential %.17g (at %d) <> stolen %.17g (at %d) with %d \
                     injected faults"
                    cs xs cp xp (injected ())
                else true
            | _ -> QCheck.Test.fail_report "missing incumbent"))

let prop_parallel_resume_matches_sequential =
  QCheck.Test.make
    ~name:"parallel kill/resume reproduces the sequential incumbent"
    ~count:(qcheck_count 15)
    QCheck.(
      triple (float_range (-20.0) 20.0) (int_range 1 40) (oneofl [ 2; 4 ]))
    (fun (target, kill_after, domains) ->
      let exact = { Bnb.default_params with rel_gap = 0.0; abs_gap = 0.0 } in
      let full =
        Bnb.minimize ~params:exact (integer_quadratic_oracle target) (-100, 100)
      in
      let path = temp_checkpoint () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Sys.remove path;
          let par = { exact with Bnb.domains } in
          match
            run_with_timeout ~seconds:60.0 (fun () ->
                let killed =
                  Bnb.minimize
                    ~params:{ par with Bnb.max_nodes = kill_after }
                    ~checkpointing:
                      (Bnb.checkpointing ~fingerprint:"steal-resume" path)
                    (integer_quadratic_oracle target)
                    (-100, 100)
                in
                if killed.Bnb.stop_reason = Bnb.Node_budget then begin
                  (* The snapshot was taken across all shards mid-steal;
                     resuming it — still on several domains — must
                     complete to the uninterrupted incumbent. *)
                  let state : ((int * int), int) Checkpoint.state =
                    Checkpoint.load ~expect_fingerprint:"steal-resume" ~path ()
                  in
                  Bnb.resume ~params:par (integer_quadratic_oracle target)
                    state
                end
                else killed)
          with
          | None -> QCheck.Test.fail_report "parallel kill/resume chain hung"
          | Some final -> (
              match (full.Bnb.best, final.Bnb.best) with
              | Some (_, cf), Some (_, cr) -> Float.abs (cf -. cr) <= 1e-12
              | _ -> QCheck.Test.fail_report "missing incumbent")))

(* Eager frontier seeding must be invisible to the search's conclusion:
   whatever the seed factor, the seeded parallel run lands on the
   sequential incumbent with the same certified gap — under injected
   bound faults, and through a kill that lands inside the seed phase
   itself (a large [seed_factor] keeps the whole budgeted prefix inside
   the seed loop, so a small [max_nodes] trips there; the snapshot taken
   from the half-dealt frontier must resume to the same answer).
   Injection and kill/resume stay separate dimensions for the same
   reason as in [prop_ldafp_warm_cold_agree]: injection seeds are
   per-run. *)
let prop_seeded_parallel_agrees_with_sequential =
  QCheck.Test.make
    ~name:"seeded parallel search matches sequential incumbent and gap"
    ~count:(qcheck_count 15)
    (QCheck.make
       ~print:(fun (rate, seed, domains, target, seed_factor, resume) ->
         Printf.sprintf
           "rate=%.3f seed=%d domains=%d target=%.2f seed_factor=%d resume=%b"
           rate seed domains target seed_factor resume)
       QCheck.Gen.(
         map3
           (fun (rate, seed) (domains, target) (seed_factor, resume) ->
             (rate, seed, domains, target, seed_factor, resume))
           fault_rate_gen
           (pair (oneofl [ 2; 4 ]) (float_range (-20.0) 20.0))
           (pair (oneofl [ 2; 8; 32 ]) bool)))
    (fun (rate, seed, domains, target, seed_factor, resume) ->
      let clean = integer_quadratic_oracle target in
      let root = (-100, 100) in
      let exact = { Bnb.default_params with rel_gap = 0.0; abs_gap = 0.0 } in
      let seq = Bnb.minimize ~params:exact clean root in
      let par_params = { exact with Bnb.domains; seed_factor } in
      let run () =
        if resume then begin
          let path = temp_checkpoint () in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              Sys.remove path;
              let kill_after = 1 + (seed mod 4) in
              let killed =
                Bnb.minimize
                  ~params:{ par_params with Bnb.max_nodes = kill_after }
                  ~checkpointing:
                    (Bnb.checkpointing ~fingerprint:"seed-resume" path)
                  clean root
              in
              if killed.Bnb.stop_reason = Bnb.Node_budget then begin
                let state : ((int * int), int) Checkpoint.state =
                  Checkpoint.load ~expect_fingerprint:"seed-resume" ~path ()
                in
                Bnb.resume ~params:par_params clean state
              end
              else killed)
        end
        else
          let cfg =
            Fault_inject.config ~seed ~bound_exn_prob:(rate /. 2.0)
              ~bound_nan_prob:(rate /. 2.0) ()
          in
          let oracle, _injected = Fault_inject.wrap cfg clean in
          Bnb.minimize ~params:par_params ~faults:(recovering_faults clean)
            oracle root
      in
      match run_with_timeout ~seconds:60.0 run with
      | None -> QCheck.Test.fail_report "seeded parallel search hung"
      | Some par -> (
          match (seq.Bnb.best, par.Bnb.best) with
          | Some (_, cs), Some (_, cp) ->
              if Float.abs (cs -. cp) > 1e-12 then
                QCheck.Test.fail_reportf
                  "sequential incumbent %.17g <> seeded %.17g" cs cp
              else begin
                let gap r best_cost = best_cost -. r.Bnb.bound in
                let gs = gap seq cs and gp = gap par cp in
                if Float.abs (gs -. gp) > 1e-9 *. (1.0 +. Float.abs gs) then
                  QCheck.Test.fail_reportf
                    "certified gaps diverge: sequential %.17g seeded %.17g" gs
                    gp
                else true
              end
          | _ -> QCheck.Test.fail_report "missing incumbent"))

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [
      prop_faulty_search_terminates;
      prop_fault_free_wrap_is_identity;
      prop_resume_reaches_same_incumbent;
      prop_stealing_agrees_with_sequential;
      prop_parallel_resume_matches_sequential;
      prop_seeded_parallel_agrees_with_sequential;
      prop_ldafp_warm_cold_agree;
    ]

let () =
  Alcotest.run "fault"
    [
      ( "classify",
        [ Alcotest.test_case "containable" `Quick test_fault_containable ] );
      ( "containment",
        [
          Alcotest.test_case "exception degraded, optimum kept" `Quick
            test_contained_exception_still_optimal;
          Alcotest.test_case "NaN bound degraded" `Quick
            test_nan_bound_degraded;
          Alcotest.test_case "drop policy counts" `Quick
            test_drop_policy_counts;
          Alcotest.test_case "propagate policy reraises" `Quick
            test_propagate_policy_reraises;
          Alcotest.test_case "branch failure contained" `Quick
            test_branch_failure_contained;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_delay;
          Alcotest.test_case "backoff time charged" `Quick
            test_retry_backoff_charged;
          Alcotest.test_case "per-expansion budget" `Quick
            test_retry_budget_exhausted;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "shed stays sound" `Quick
            test_frontier_shed_stays_sound;
          Alcotest.test_case "shed stays sound, domains=4" `Quick
            test_frontier_shed_parallel_sound;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "trusting misprunes, certified does not" `Quick
            test_corrupt_primal_trusting_misprunes;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "poisoned region, domains=4, exception" `Quick
            test_deadlock_regression_exception;
          Alcotest.test_case "poisoned region, domains=4, NaN bound" `Quick
            test_deadlock_regression_nan;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "fingerprint mismatch" `Quick
            test_checkpoint_rejects_fingerprint_mismatch;
          Alcotest.test_case "garbage file" `Quick
            test_checkpoint_rejects_garbage;
          Alcotest.test_case "truncated payload" `Quick
            test_checkpoint_rejects_truncation;
          Alcotest.test_case "missing file" `Quick
            test_checkpoint_missing_file;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill and resume" `Quick test_bnb_kill_and_resume;
          Alcotest.test_case "periodic snapshots" `Quick
            test_bnb_periodic_checkpoint;
          Alcotest.test_case "interrupt stops and saves" `Quick
            test_bnb_interrupt_stops_and_saves;
        ] );
      ( "ldafp",
        [
          Alcotest.test_case "kill and resume chain" `Quick
            test_ldafp_kill_and_resume;
          Alcotest.test_case "resume rejects other problem" `Quick
            test_ldafp_resume_rejects_other_problem;
          Alcotest.test_case "interval fallback conservative" `Quick
            test_ldafp_interval_fallback_is_conservative;
          Alcotest.test_case "faults invalidate warm starts" `Quick
            test_ldafp_faults_invalidate_warm_starts;
          Alcotest.test_case "warm counters survive resume" `Quick
            test_ldafp_warm_counters_survive_resume;
          Alcotest.test_case "pre-schema snapshot flags counters_reset" `Quick
            test_ldafp_counters_reset_marker;
          Alcotest.test_case "cert counters survive resume" `Quick
            test_ldafp_cert_counters_survive_resume;
          Alcotest.test_case "stripped cert keys clear certified_sound"
            `Quick test_ldafp_cert_schema_reset_marker;
          Alcotest.test_case "no-certify flags the run as trusting" `Quick
            test_ldafp_no_certify_flags_unsound;
          Alcotest.test_case "certificates under faults and resume" `Quick
            test_ldafp_cert_with_faults_and_resume;
        ] );
      ("properties", qcheck_tests);
    ]
