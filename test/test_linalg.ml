(* Tests for the dense linear-algebra substrate. *)

open Linalg

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkfa msg = Alcotest.(check (array (float 1e-9))) msg

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let test_vec_basics () =
  let a = [| 1.0; -2.0; 3.0 |] and b = [| 0.5; 0.5; 0.5 |] in
  checkfa "add" [| 1.5; -1.5; 3.5 |] (Vec.add a b);
  checkfa "sub" [| 0.5; -2.5; 2.5 |] (Vec.sub a b);
  checkfa "scale" [| 2.0; -4.0; 6.0 |] (Vec.scale 2.0 a);
  checkf "dot" 1.0 (Vec.dot a b);
  checkf "norm2" (sqrt 14.0) (Vec.norm2 a);
  checkf "norm1" 6.0 (Vec.norm1 a);
  checkf "norm_inf" 3.0 (Vec.norm_inf a);
  checkfa "axpy" [| 2.5; -3.5; 6.5 |] (Vec.axpy 2.0 a b);
  checkf "sum" 2.0 (Vec.sum a);
  checkf "mean" (2.0 /. 3.0) (Vec.mean a);
  checki "amax" 2 (Vec.amax_index a)

let test_vec_normalize () =
  let a = [| 3.0; 4.0 |] in
  checkfa "unit" [| 0.6; 0.8 |] (Vec.normalize a);
  checkf "unit norm" 1.0 (Vec.norm2 (Vec.normalize a));
  checkfa "inf-normalized" [| 0.75; 1.0 |] (Vec.normalize_inf a);
  checkb "zero rejected" true
    (match Vec.normalize [| 0.0; 0.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_vec_basis_slice () =
  checkfa "basis" [| 0.0; 1.0; 0.0 |] (Vec.basis 3 1);
  checkfa "slice" [| 2.0; 3.0 |]
    (Vec.slice [| 1.0; 2.0; 3.0; 4.0 |] ~pos:1 ~len:2);
  checkb "dim mismatch raises" true
    (match Vec.add [| 1.0 |] [| 1.0; 2.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Mat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_mat_mul () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  checkfa "row0" [| 19.0; 22.0 |] c.(0);
  checkfa "row1" [| 43.0; 50.0 |] c.(1);
  checkb "a*I = a" true (Mat.approx_equal a (Mat.mul a (Mat.identity 2)));
  checkb "I*a = a" true (Mat.approx_equal a (Mat.mul (Mat.identity 2) a))

let test_mat_vec () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  checkfa "mul_vec" [| 5.0; 11.0; 17.0 |] (Mat.mul_vec a [| 1.0; 2.0 |]);
  checkfa "tmul_vec" [| 22.0; 28.0 |] (Mat.tmul_vec a [| 1.0; 2.0; 3.0 |]);
  let t = Mat.transpose a in
  checki "transpose rows" 2 (Mat.rows t);
  checkfa "transpose row" [| 1.0; 3.0; 5.0 |] t.(0)

let test_mat_outer_quadratic () =
  let u = [| 1.0; 2.0 |] and v = [| 3.0; 4.0; 5.0 |] in
  let o = Mat.outer u v in
  checki "outer rows" 2 (Mat.rows o);
  checkf "outer entry" 8.0 o.(1).(1);
  let s = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  checkf "quadratic form" 18.0 (Mat.quadratic_form s [| 1.0; 2.0 |])

let test_mat_props () =
  let s = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  checkb "symmetric" true (Mat.is_symmetric s);
  checkb "not symmetric" false
    (Mat.is_symmetric [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  checkf "trace" 5.0 (Mat.trace s);
  checkf "fro" (sqrt 15.0) (Mat.frobenius_norm s);
  checkf "max_abs" 3.0 (Mat.max_abs s);
  let sym = Mat.symmetrize [| [| 1.0; 2.0 |]; [| 4.0; 1.0 |] |] in
  checkf "symmetrize" 3.0 sym.(0).(1);
  checkf "diag entry" 2.0 (Mat.diag [| 2.0; 5.0 |]).(0).(0);
  checkfa "diagonal" [| 2.0; 3.0 |] (Mat.diagonal s)

(* ------------------------------------------------------------------ *)
(* Tri / Cholesky                                                      *)
(* ------------------------------------------------------------------ *)

let random_spd rng n =
  let a =
    Mat.init n n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0)
  in
  Mat.add_scaled_identity (0.5 *. float_of_int n)
    (Mat.mul a (Mat.transpose a))

let test_cholesky_reconstruct () =
  let rng = Stats.Rng.create 1 in
  for n = 1 to 8 do
    let a = random_spd rng n in
    let l = Cholesky.factor a in
    let llt = Mat.mul l (Mat.transpose l) in
    checkb
      (Printf.sprintf "LLt = A (n=%d)" n)
      true
      (Mat.approx_equal ~tol:1e-8 a llt);
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        checkf "upper zero" 0.0 l.(i).(j)
      done
    done
  done

let test_cholesky_solve_residual () =
  let rng = Stats.Rng.create 2 in
  for n = 1 to 10 do
    let a = random_spd rng n in
    let b = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0) in
    let x = Cholesky.solve a b in
    checkb
      (Printf.sprintf "residual small (n=%d)" n)
      true
      (Vec.dist2 (Mat.mul_vec a x) b < 1e-8)
  done

let test_cholesky_not_pd () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  checkb "not pd detected" false (Cholesky.is_positive_definite a);
  checkb "raises" true
    (match Cholesky.factor a with
    | exception Cholesky.Not_positive_definite _ -> true
    | _ -> false)

let test_cholesky_jittered () =
  let a = Mat.outer [| 1.0; 2.0 |] [| 1.0; 2.0 |] in
  let l, jitter = Cholesky.factor_jittered a in
  checkb "jitter positive" true (jitter > 0.0);
  let llt = Mat.mul l (Mat.transpose l) in
  checkb "close to A" true (Mat.approx_equal ~tol:1e-4 a llt)

let test_cholesky_inverse_logdet () =
  let a = [| [| 4.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  let inv = Cholesky.inverse a in
  checkb "A A-1 = I" true
    (Mat.approx_equal ~tol:1e-9 (Mat.identity 2) (Mat.mul a inv));
  checkf "log det" (log 8.0) (Cholesky.log_det a)

let test_tri_solves () =
  let l = [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  checkfa "lower solve" [| 2.0; 1.0 |] (Tri.solve_lower l [| 4.0; 5.0 |]);
  let u = [| [| 2.0; 1.0 |]; [| 0.0; 3.0 |] |] in
  checkfa "upper solve" [| 0.5; 3.0 |] (Tri.solve_upper u [| 4.0; 9.0 |]);
  let lt = Tri.solve_lower_transpose l [| 4.0; 9.0 |] in
  (* Lᵀ x = b with Lᵀ = [[2,1],[0,3]]: x = (0.5, 3) *)
  checkfa "lower transpose solve" [| 0.5; 3.0 |] lt;
  checkb "singular raises" true
    (match
       Tri.solve_lower [| [| 0.0; 0.0 |]; [| 1.0; 1.0 |] |] [| 1.0; 1.0 |]
     with
    | exception Tri.Singular _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* In-place kernels (_into): each must match its allocating            *)
(* counterpart exactly, including under the documented aliasing        *)
(* ------------------------------------------------------------------ *)

let random_vec rng n = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0)

let test_axpy_into () =
  let rng = Stats.Rng.create 11 in
  for n = 1 to 6 do
    let x = random_vec rng n and y = random_vec rng n in
    let expect = Vec.axpy 1.7 x y in
    let dst = Array.make n Float.nan in
    Vec.axpy_into 1.7 x y ~dst;
    checkfa "fresh dst" expect dst;
    let x' = Array.copy x in
    Vec.axpy_into 1.7 x' y ~dst:x';
    checkfa "dst aliases x" expect x';
    let y' = Array.copy y in
    Vec.axpy_into 1.7 x y' ~dst:y';
    checkfa "dst aliases y" expect y'
  done

let test_mat_vec_into () =
  let rng = Stats.Rng.create 12 in
  List.iter
    (fun (m, n) ->
      let a = Mat.init m n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0) in
      let x = random_vec rng n and xt = random_vec rng m in
      let dst = Array.make m Float.nan in
      Mat.mul_vec_into a x ~dst;
      checkfa "mul_vec_into" (Mat.mul_vec a x) dst;
      let dstt = Array.make n Float.nan in
      Mat.tmul_vec_into a xt ~dst:dstt;
      checkfa "tmul_vec_into" (Mat.tmul_vec a xt) dstt;
      (* the zero-skip in tmul_vec_into must not change results *)
      let sparse = Array.mapi (fun i v -> if i mod 2 = 0 then 0.0 else v) xt in
      Mat.tmul_vec_into a sparse ~dst:dstt;
      checkfa "tmul_vec_into sparse" (Mat.tmul_vec a sparse) dstt)
    [ (1, 1); (3, 2); (2, 5); (4, 4) ]

let test_mat_scale_symmetrize_into () =
  let rng = Stats.Rng.create 13 in
  let a = Mat.init 4 4 (fun _ _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0) in
  let expect = Mat.scale 0.25 a in
  let dst = Mat.init 4 4 (fun _ _ -> Float.nan) in
  Mat.scale_into 0.25 a ~dst;
  checkb "scale_into" true (Mat.approx_equal expect dst);
  let a' = Mat.copy a in
  Mat.scale_into 0.25 a' ~dst:a';
  checkb "scale_into aliased" true (Mat.approx_equal expect a');
  let expect = Mat.symmetrize a in
  Mat.symmetrize_into a ~dst;
  checkb "symmetrize_into" true (Mat.approx_equal expect dst);
  let a' = Mat.copy a in
  Mat.symmetrize_into a' ~dst:a';
  checkb "symmetrize_into aliased" true (Mat.approx_equal expect a')

let test_tri_into () =
  let rng = Stats.Rng.create 14 in
  for n = 1 to 6 do
    let l = Cholesky.factor (random_spd rng n) in
    let b = random_vec rng n in
    let dst = Array.make n Float.nan in
    Tri.solve_lower_into l b ~dst;
    checkfa "solve_lower_into" (Tri.solve_lower l b) dst;
    let b' = Array.copy b in
    Tri.solve_lower_into l b' ~dst:b';
    checkfa "solve_lower_into aliased" (Tri.solve_lower l b) b';
    Tri.solve_lower_transpose_into l b ~dst;
    checkfa "solve_lower_transpose_into" (Tri.solve_lower_transpose l b) dst;
    let b' = Array.copy b in
    Tri.solve_lower_transpose_into l b' ~dst:b';
    checkfa "solve_lower_transpose_into aliased"
      (Tri.solve_lower_transpose l b) b'
  done

let test_cholesky_into () =
  let rng = Stats.Rng.create 15 in
  for n = 1 to 6 do
    let a = random_spd rng n in
    let expect = Cholesky.factor a in
    let dst = Mat.init n n (fun _ _ -> Float.nan) in
    Cholesky.factor_into a ~dst;
    checkb "factor_into" true (Mat.approx_equal ~tol:1e-12 expect dst);
    (* aliased: classical in-place factorisation overwrites a *)
    let a' = Mat.copy a in
    Cholesky.factor_into a' ~dst:a';
    checkb "factor_into aliased" true (Mat.approx_equal ~tol:1e-12 expect a');
    let expect_l, expect_j = Cholesky.factor_jittered a in
    let j = Cholesky.factor_jittered_into a ~dst in
    checkf "factor_jittered_into jitter" expect_j j;
    checkb "factor_jittered_into factor" true
      (Mat.approx_equal ~tol:1e-12 expect_l dst);
    let b = random_vec rng n in
    let xdst = Array.make n Float.nan in
    Cholesky.solve_factored_into expect b ~dst:xdst;
    checkfa "solve_factored_into" (Cholesky.solve_factored expect b) xdst;
    let b' = Array.copy b in
    Cholesky.solve_factored_into expect b' ~dst:b';
    checkfa "solve_factored_into aliased" (Cholesky.solve_factored expect b) b'
  done

let test_factor_jittered_into_rank_deficient () =
  (* A rank-1 matrix forces the retry loop: failed attempts must leave
     the pristine input intact and still land on factor_jittered's
     answer. *)
  let a = Mat.outer [| 1.0; 2.0 |] [| 1.0; 2.0 |] in
  let keep = Mat.copy a in
  let expect_l, expect_j = Cholesky.factor_jittered a in
  let dst = Mat.init 2 2 (fun _ _ -> Float.nan) in
  let j = Cholesky.factor_jittered_into a ~dst in
  checkf "jitter agrees" expect_j j;
  checkb "factor agrees" true (Mat.approx_equal ~tol:1e-12 expect_l dst);
  checkb "input untouched" true (Mat.approx_equal ~tol:0.0 keep a)

(* ------------------------------------------------------------------ *)
(* LU                                                                  *)
(* ------------------------------------------------------------------ *)

let test_lu_solve () =
  let rng = Stats.Rng.create 3 in
  for n = 1 to 10 do
    let a =
      Mat.init n n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0)
    in
    let a = Mat.add_scaled_identity 0.1 a in
    let b = Array.init n (fun _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    match Lu.solve a b with
    | x ->
        checkb
          (Printf.sprintf "residual (n=%d)" n)
          true
          (Vec.dist2 (Mat.mul_vec a x) b < 1e-7)
    | exception Tri.Singular _ -> ()
  done

let test_lu_pivoting_example () =
  (* The paper's §1 motivation: pivoting rescues the tiny-pivot system. *)
  let a = [| [| 1e-20; 1.0 |]; [| 1.0; 1.0 |] |] in
  let b = [| 1.0; 2.0 |] in
  let x = Lu.solve a b in
  checkb "pivoted solve accurate" true (Vec.dist2 (Mat.mul_vec a x) b < 1e-12)

let test_lu_det () =
  checkf "det 2x2" (-2.0) (Lu.det [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]);
  checkf "det identity" 1.0 (Lu.det (Mat.identity 4));
  checkf "det singular" 0.0 (Lu.det [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]);
  checkf "det swap" 2.0 (Lu.det [| [| 3.0; 4.0 |]; [| 1.0; 2.0 |] |])

let test_lu_inverse_condition () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let inv = Lu.inverse a in
  checkb "inverse" true
    (Mat.approx_equal ~tol:1e-9 (Mat.identity 2) (Mat.mul a inv));
  checkb "condition >= 1" true (Lu.condition_estimate a >= 1.0);
  checkb "cond of identity is 1" true
    (Float.abs (Lu.condition_estimate (Mat.identity 3) -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Sym_eig                                                             *)
(* ------------------------------------------------------------------ *)

let test_jacobi_diag () =
  let d = Mat.diag [| 3.0; 1.0; 2.0 |] in
  let { Sym_eig.eigenvalues; _ } = Sym_eig.decompose d in
  checkfa "sorted eigenvalues" [| 3.0; 2.0; 1.0 |] eigenvalues

let test_jacobi_2x2_analytic () =
  let { Sym_eig.eigenvalues; eigenvectors } =
    Sym_eig.decompose [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |]
  in
  checkf "l1" 3.0 eigenvalues.(0);
  checkf "l2" 1.0 eigenvalues.(1);
  let v = Mat.col eigenvectors 0 in
  checkf "eigvec ratio" 1.0 (v.(0) /. v.(1))

let test_jacobi_reconstruction () =
  let rng = Stats.Rng.create 4 in
  for n = 2 to 8 do
    let a = random_spd rng n in
    let { Sym_eig.eigenvalues; eigenvectors = v } = Sym_eig.decompose a in
    let recon =
      Mat.mul (Mat.mul v (Mat.diag eigenvalues)) (Mat.transpose v)
    in
    checkb
      (Printf.sprintf "reconstruction n=%d" n)
      true
      (Mat.approx_equal ~tol:1e-7 a recon);
    checkb "VtV = I" true
      (Mat.approx_equal ~tol:1e-8 (Mat.identity n)
         (Mat.mul (Mat.transpose v) v))
  done

let test_sqrt_psd () =
  let rng = Stats.Rng.create 5 in
  let a = random_spd rng 5 in
  let s = Sym_eig.sqrt_psd a in
  checkb "S S = A" true (Mat.approx_equal ~tol:1e-7 a (Mat.mul s s));
  checkb "S symmetric" true (Mat.is_symmetric ~tol:1e-8 s)

let test_spectral_bounds () =
  let a = [| [| 2.0; 0.0 |]; [| 0.0; -5.0 |] |] in
  checkf "spectral radius" 5.0 (Sym_eig.spectral_radius a);
  checkf "min eig" (-5.0) (Sym_eig.min_eigenvalue a)

(* ------------------------------------------------------------------ *)
(* QR                                                                  *)
(* ------------------------------------------------------------------ *)

let test_qr_reconstruct () =
  let rng = Stats.Rng.create 7 in
  List.iter
    (fun (m, n) ->
      let a =
        Mat.init m n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-2.0) ~hi:2.0)
      in
      let { Qr.q; r } = Qr.factor a in
      checkb
        (Printf.sprintf "QR = A (%dx%d)" m n)
        true
        (Mat.approx_equal ~tol:1e-9 a (Mat.mul q r));
      checkb "Q orthonormal columns" true
        (Mat.approx_equal ~tol:1e-9 (Mat.identity n)
           (Mat.mul (Mat.transpose q) q));
      (* R upper triangular *)
      for i = 0 to n - 1 do
        for j = 0 to i - 1 do
          checkf "r lower zero" 0.0 r.(i).(j)
        done
      done)
    [ (3, 3); (6, 3); (10, 5); (4, 1) ]

let test_qr_least_squares () =
  (* Overdetermined line fit y = 2x + 1 with known residuals. *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| 3.0; 1.0 |] |] in
  let b = [| 1.0; 3.0; 5.0; 7.0 |] in
  let x = Qr.solve_least_squares a b in
  checkfa "exact fit" [| 2.0; 1.0 |] x;
  (* perturbed: solution minimises the residual, check against normal
     equations *)
  let b2 = [| 1.1; 2.9; 5.2; 6.8 |] in
  let x2 = Qr.solve_least_squares a b2 in
  let at = Mat.transpose a in
  let normal = Cholesky.solve (Mat.mul at a) (Mat.mul_vec at b2) in
  checkb "matches normal equations" true (Vec.approx_equal ~tol:1e-9 x2 normal)

let test_qr_square_solve_matches_lu () =
  let rng = Stats.Rng.create 8 in
  for n = 1 to 8 do
    let a =
      Mat.add_scaled_identity 0.3
        (Mat.init n n (fun _ _ -> Stats.Rng.uniform rng ~lo:(-1.0) ~hi:1.0))
    in
    let b = Array.init n (fun i -> float_of_int (i - 2)) in
    match (Qr.solve_square a b, Lu.solve a b) with
    | xq, xl ->
        checkb
          (Printf.sprintf "QR and LU agree (n=%d)" n)
          true
          (Vec.approx_equal ~tol:1e-7 xq xl)
    | exception Tri.Singular _ -> ()
  done

let test_qr_rejects_wide_and_dependent () =
  checkb "wide rejected" true
    (match Qr.factor [| [| 1.0; 2.0; 3.0 |] |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "dependent columns rejected" true
    (match Qr.factor [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |]; [| 3.0; 6.0 |] |] with
    | exception Tri.Singular _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Linsys                                                              *)
(* ------------------------------------------------------------------ *)

let test_linsys_dispatch () =
  let rng = Stats.Rng.create 6 in
  let spd = random_spd rng 4 in
  let b = [| 1.0; 2.0; 3.0; 4.0 |] in
  let r = Linsys.solve_report spd b in
  checkb "spd uses cholesky" true (r.Linsys.used = `Cholesky);
  checkb "small residual" true (r.Linsys.residual_norm < 1e-8);
  let gen = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let r = Linsys.solve_report gen [| 1.0; 2.0 |] in
  checkb "indefinite symmetric falls back to LU" true (r.Linsys.used = `Lu);
  checkfa "swap solve" [| 2.0; 1.0 |] r.Linsys.solution

let test_linsys_regularized () =
  let a = Mat.outer [| 1.0; 1.0 |] [| 1.0; 1.0 |] in
  let x = Linsys.solve_spd_regularized ~ridge:1e-8 a [| 2.0; 2.0 |] in
  checkb "finite" true (Array.for_all Float.is_finite x);
  checkb "approximately solves" true
    (Vec.dist2 (Mat.mul_vec a x) [| 2.0; 2.0 |] < 1e-3)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_vec n =
  QCheck.make
    ~print:(fun v -> Format.asprintf "%a" Vec.pp v)
    QCheck.Gen.(
      let* l = list_repeat n (float_range (-10.0) 10.0) in
      return (Array.of_list l))

let prop_dot_symmetric =
  QCheck.Test.make ~name:"dot symmetric" ~count:200
    (QCheck.pair (arb_vec 5) (arb_vec 5)) (fun (a, b) ->
      Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-9)

let prop_cauchy_schwarz =
  QCheck.Test.make ~name:"Cauchy-Schwarz" ~count:200
    (QCheck.pair (arb_vec 6) (arb_vec 6)) (fun (a, b) ->
      Float.abs (Vec.dot a b) <= (Vec.norm2 a *. Vec.norm2 b) +. 1e-9)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    (QCheck.pair (arb_vec 6) (arb_vec 6)) (fun (a, b) ->
      Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9)

let arb_spd =
  QCheck.make
    ~print:(fun m -> Format.asprintf "%a" Mat.pp m)
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* seed = int_range 0 1_000_000 in
      let rng = Stats.Rng.create seed in
      return (random_spd rng n))

let prop_cholesky_roundtrip =
  QCheck.Test.make ~name:"cholesky reconstructs" ~count:100 arb_spd (fun a ->
      let l = Cholesky.factor a in
      Mat.approx_equal ~tol:1e-7 a (Mat.mul l (Mat.transpose l)))

let prop_solve_consistent =
  QCheck.Test.make ~name:"cholesky and LU agree on s.p.d. systems" ~count:100
    arb_spd (fun a ->
      let n = Mat.rows a in
      let b = Array.init n (fun i -> float_of_int (i + 1)) in
      let x1 = Cholesky.solve a b in
      let x2 = Lu.solve a b in
      Vec.approx_equal ~tol:1e-6 x1 x2)

let prop_quadratic_form_nonneg =
  QCheck.Test.make ~name:"s.p.d. quadratic form positive" ~count:100
    (QCheck.pair arb_spd (arb_vec 6)) (fun (a, x) ->
      let x = Array.sub x 0 (Mat.rows a) in
      QCheck.assume (Vec.norm2 x > 1e-6);
      Mat.quadratic_form a x > 0.0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dot_symmetric;
      prop_cauchy_schwarz;
      prop_triangle_inequality;
      prop_cholesky_roundtrip;
      prop_solve_consistent;
      prop_quadratic_form_nonneg;
    ]

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "basis/slice" `Quick test_vec_basis_slice;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "mat-vec" `Quick test_mat_vec;
          Alcotest.test_case "outer/quadratic" `Quick test_mat_outer_quadratic;
          Alcotest.test_case "properties" `Quick test_mat_props;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "reconstruct" `Quick test_cholesky_reconstruct;
          Alcotest.test_case "solve residual" `Quick
            test_cholesky_solve_residual;
          Alcotest.test_case "not pd" `Quick test_cholesky_not_pd;
          Alcotest.test_case "jittered" `Quick test_cholesky_jittered;
          Alcotest.test_case "inverse/logdet" `Quick
            test_cholesky_inverse_logdet;
          Alcotest.test_case "triangular solves" `Quick test_tri_solves;
        ] );
      ( "into kernels",
        [
          Alcotest.test_case "axpy_into" `Quick test_axpy_into;
          Alcotest.test_case "mat-vec into" `Quick test_mat_vec_into;
          Alcotest.test_case "scale/symmetrize into" `Quick
            test_mat_scale_symmetrize_into;
          Alcotest.test_case "triangular into" `Quick test_tri_into;
          Alcotest.test_case "cholesky into" `Quick test_cholesky_into;
          Alcotest.test_case "jittered retry pristine" `Quick
            test_factor_jittered_into_rank_deficient;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting_example;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "inverse/condition" `Quick
            test_lu_inverse_condition;
        ] );
      ( "sym_eig",
        [
          Alcotest.test_case "diagonal" `Quick test_jacobi_diag;
          Alcotest.test_case "2x2 analytic" `Quick test_jacobi_2x2_analytic;
          Alcotest.test_case "reconstruction" `Quick
            test_jacobi_reconstruction;
          Alcotest.test_case "sqrt_psd" `Quick test_sqrt_psd;
          Alcotest.test_case "spectral bounds" `Quick test_spectral_bounds;
        ] );
      ( "qr",
        [
          Alcotest.test_case "reconstruct" `Quick test_qr_reconstruct;
          Alcotest.test_case "least squares" `Quick test_qr_least_squares;
          Alcotest.test_case "square solve" `Quick
            test_qr_square_solve_matches_lu;
          Alcotest.test_case "rejects degenerate" `Quick
            test_qr_rejects_wide_and_dependent;
        ] );
      ( "linsys",
        [
          Alcotest.test_case "dispatch" `Quick test_linsys_dispatch;
          Alcotest.test_case "regularized" `Quick test_linsys_regularized;
        ] );
      ("properties", qcheck_tests);
    ]
