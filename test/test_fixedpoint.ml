(* Tests for the fixed-point arithmetic substrate. *)

open Fixedpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-12)) msg

(* ------------------------------------------------------------------ *)
(* Qformat                                                             *)
(* ------------------------------------------------------------------ *)

let test_format_basics () =
  let fmt = Qformat.make ~k:3 ~f:5 in
  checki "word length" 8 (Qformat.word_length fmt);
  checkf "ulp" 0.03125 (Qformat.ulp fmt);
  checkf "min" (-4.0) (Qformat.min_value fmt);
  checkf "max" (4.0 -. 0.03125) (Qformat.max_value fmt);
  checki "min raw" (-128) (Qformat.min_raw fmt);
  checki "max raw" 127 (Qformat.max_raw fmt);
  checki "cardinality" 256 (Qformat.cardinality fmt)

let test_format_q30_paper () =
  (* Q3.0 is the paper's §3 example format: range [-4, 3]. *)
  let fmt = Qformat.make ~k:3 ~f:0 in
  checkf "min" (-4.0) (Qformat.min_value fmt);
  checkf "max" 3.0 (Qformat.max_value fmt);
  checkf "ulp" 1.0 (Qformat.ulp fmt)

let test_format_invalid () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Qformat.make: k must be >= 1 (sign bit)")
    (fun () -> ignore (Qformat.make ~k:0 ~f:4));
  checkb "negative f rejected" true
    (match Qformat.make ~k:2 ~f:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "huge word rejected" true
    (match Qformat.make ~k:32 ~f:32 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_wrap_raw () =
  let fmt = Qformat.make ~k:3 ~f:0 in
  checki "in range" 3 (Qformat.wrap_raw fmt 3);
  checki "3+3 wraps to -2" (-2) (Qformat.wrap_raw fmt 6);
  checki "-5 wraps to 3" 3 (Qformat.wrap_raw fmt (-5));
  checki "8 wraps to 0" 0 (Qformat.wrap_raw fmt 8);
  checki "min stays" (-4) (Qformat.wrap_raw fmt (-4))

let test_saturate_raw () =
  let fmt = Qformat.make ~k:3 ~f:0 in
  checki "clamps high" 3 (Qformat.saturate_raw fmt 100);
  checki "clamps low" (-4) (Qformat.saturate_raw fmt (-100));
  checki "passes through" 2 (Qformat.saturate_raw fmt 2)

let test_grid_helpers () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  checkf "floor" 0.25 (Qformat.floor_to_grid fmt 0.3);
  checkf "ceil" 0.5 (Qformat.ceil_to_grid fmt 0.3);
  checkf "nearest down" 0.25 (Qformat.nearest_on_grid fmt 0.3);
  checkf "nearest up" 0.5 (Qformat.nearest_on_grid fmt 0.45);
  (* tie 0.375 -> even raw (0.375 scaled = 1.5; even neighbour 2 -> 0.5) *)
  checkf "tie to even" 0.5 (Qformat.nearest_on_grid fmt 0.375);
  checkf "negative floor" (-0.5) (Qformat.floor_to_grid fmt (-0.3))

let test_values_enumeration () =
  let fmt = Qformat.make ~k:2 ~f:1 in
  let vs = Qformat.values fmt in
  checki "count" 8 (Array.length vs);
  checkf "first" (-2.0) vs.(0);
  checkf "last" 1.5 vs.(7);
  (* strictly increasing with constant step *)
  Array.iteri
    (fun i v -> if i > 0 then checkf "step" 0.5 (v -. vs.(i - 1)))
    vs

let test_raw_value_roundtrip () =
  let fmt = Qformat.make ~k:2 ~f:6 in
  for r = Qformat.min_raw fmt to Qformat.max_raw fmt do
    checki "roundtrip" r (Qformat.raw_of_value_exn fmt (Qformat.value_of_raw fmt r))
  done

(* ------------------------------------------------------------------ *)
(* Rounding                                                            *)
(* ------------------------------------------------------------------ *)

let test_shift_right_rounded_matches_float () =
  (* Integer shift-with-round must agree with rounding the real quotient. *)
  List.iter
    (fun (r, n) ->
      let real = float_of_int r /. float_of_int (1 lsl n) in
      let got = Rounding.shift_right_rounded Rounding.Floor r n in
      checki
        (Printf.sprintf "floor %d >> %d" r n)
        (int_of_float (Float.floor real))
        got;
      let got = Rounding.shift_right_rounded Rounding.Ceil r n in
      checki
        (Printf.sprintf "ceil %d >> %d" r n)
        (int_of_float (Float.ceil real))
        got)
    [ (13, 2); (-13, 2); (7, 3); (-7, 3); (100, 4); (-100, 4); (0, 5) ]

let test_shift_right_nearest_ties () =
  (* value 2.5 -> 2 (even); 3.5 -> 4; -2.5 -> -2; -3.5 -> -4 *)
  checki "2.5 to even" 2 (Rounding.shift_right_rounded Rounding.Nearest 5 1);
  checki "3.5 to even" 4 (Rounding.shift_right_rounded Rounding.Nearest 7 1);
  checki "-2.5 to even" (-2) (Rounding.shift_right_rounded Rounding.Nearest (-5) 1);
  checki "-3.5 to even" (-4) (Rounding.shift_right_rounded Rounding.Nearest (-7) 1);
  (* nearest-away: 2.5 -> 3, -2.5 -> -3 *)
  checki "2.5 away" 3 (Rounding.shift_right_rounded Rounding.Nearest_away 5 1);
  checki "-2.5 away" (-3)
    (Rounding.shift_right_rounded Rounding.Nearest_away (-5) 1)

let test_overflow_policies () =
  let fmt = Qformat.make ~k:3 ~f:0 in
  checki "wrap" (-2) (Rounding.apply_overflow Rounding.Wrap fmt ~what:"t" 6);
  checki "saturate" 3 (Rounding.apply_overflow Rounding.Saturate fmt ~what:"t" 6);
  checkb "error raises" true
    (match Rounding.apply_overflow Rounding.Error fmt ~what:"t" 6 with
    | exception Rounding.Fixed_point_overflow _ -> true
    | _ -> false)

let test_round_scaled_saturates () =
  (* Beyond the int range [int_of_float] is unspecified; extreme scaled
     values must saturate so callers can clamp them into format bounds. *)
  checki "huge positive" max_int (Rounding.round_scaled Rounding.Nearest 1e300);
  checki "huge negative" min_int
    (Rounding.round_scaled Rounding.Nearest (-1e300));
  checki "+inf" max_int (Rounding.round_scaled Rounding.Floor Float.infinity);
  checki "-inf" min_int (Rounding.round_scaled Rounding.Ceil Float.neg_infinity);
  checki "in-range unchanged" (-3)
    (Rounding.round_scaled Rounding.Nearest (-3.4));
  checkb "nan rejected" true
    (match Rounding.round_scaled Rounding.Nearest Float.nan with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fx scalars                                                          *)
(* ------------------------------------------------------------------ *)

let test_fx_of_float_nearest () =
  let fmt = Qformat.make ~k:2 ~f:3 in
  checkf "0.3 -> 0.25" 0.25 (Fx.to_float (Fx.of_float fmt 0.3));
  checkf "0.69 -> 0.75" 0.75 (Fx.to_float (Fx.of_float fmt 0.69));
  checkf "-1.99 -> -2" (-2.0) (Fx.to_float (Fx.of_float fmt (-1.99)));
  checkf "exact stays" 0.625 (Fx.to_float (Fx.of_float fmt 0.625))

let test_fx_overflow_wrap_vs_saturate () =
  let fmt = Qformat.make ~k:2 ~f:3 in
  (* 2.0 is one ulp past max = 1.875; wrap lands at -2.0 *)
  checkf "wrap" (-2.0) (Fx.to_float (Fx.of_float ~ov:Rounding.Wrap fmt 2.0));
  checkf "saturate" 1.875
    (Fx.to_float (Fx.of_float ~ov:Rounding.Saturate fmt 2.0))

let test_fx_add_sub_paper_example () =
  (* §3: 3 + 3 - 4 = 2 in Q3.0 despite intermediate wrap. *)
  let fmt = Qformat.make ~k:3 ~f:0 in
  let three = Fx.of_float fmt 3.0 in
  let four = Fx.of_float fmt 4.0 ~ov:Rounding.Saturate in
  ignore four;
  let six = Fx.add three three in
  checkf "3+3 wraps to -2" (-2.0) (Fx.to_float six);
  let res = Fx.sub six (Fx.of_float fmt 4.0 ~ov:Rounding.Saturate) in
  (* -2 - 3(sat) = -5 wraps to 3: saturation of 4 changes the example, so
     instead subtract via adding -4 directly. *)
  ignore res;
  let minus_four = Fx.of_float fmt (-4.0) in
  checkf "(-2) + (-4) wraps to 2" 2.0 (Fx.to_float (Fx.add six minus_four))

let test_fx_mul () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  let a = Fx.of_float fmt 0.5 in
  let b = Fx.of_float fmt 0.75 in
  checkf "0.5*0.75" 0.375 (Fx.to_float (Fx.mul a b));
  let c = Fx.of_float fmt (-1.5) in
  checkf "-1.5*0.5" (-0.75) (Fx.to_float (Fx.mul c a));
  (* rounding: 0.0625 * 0.0625 = 0.00390625 -> nearest grid 0 *)
  let ulp = Fx.of_float fmt 0.0625 in
  checkf "tiny product rounds to zero" 0.0 (Fx.to_float (Fx.mul ulp ulp))

let test_fx_mul_saturate () =
  let fmt = Qformat.make ~k:2 ~f:4 in
  let big = Fx.of_float fmt 1.9375 in
  checkf "sat product" 1.9375
    (Fx.to_float (Fx.mul ~ov:Rounding.Saturate big big))

let test_fx_neg_min_val () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let m = Fx.min_val fmt in
  (* two's complement: -(-2) wraps back to -2 *)
  checkf "neg min wraps" (-2.0) (Fx.to_float (Fx.neg m));
  checkf "neg min saturates" 1.75
    (Fx.to_float (Fx.neg ~ov:Rounding.Saturate m))

let test_fx_format_mismatch () =
  let a = Fx.of_float (Qformat.make ~k:2 ~f:2) 0.5 in
  let b = Fx.of_float (Qformat.make ~k:2 ~f:3) 0.5 in
  checkb "add rejects mixed formats" true
    (match Fx.add a b with exception Invalid_argument _ -> true | _ -> false)

let test_fx_shifts () =
  let fmt = Qformat.make ~k:3 ~f:2 in
  let x = Fx.of_float fmt 0.75 in
  checkf "shl 1" 1.5 (Fx.to_float (Fx.shift_left x 1));
  (* 0.75 is 3 ulps; 3/2 = 1.5 ulps rounds to even 2 ulps = 0.5 *)
  checkf "shr 1 rounds to even" 0.5 (Fx.to_float (Fx.shift_right x 1));
  checkf "shr floor" 0.25
    (Fx.to_float (Fx.shift_right x 1 ~mode:Rounding.Floor));
  checkf "shr ceil" 0.5
    (Fx.to_float (Fx.shift_right x 1 ~mode:Rounding.Ceil))

let test_quantization_error_bound () =
  let fmt = Qformat.make ~k:2 ~f:5 in
  let half_ulp = Qformat.ulp fmt /. 2.0 in
  List.iter
    (fun x ->
      let e = Fx.quantization_error fmt x in
      checkb
        (Printf.sprintf "quant error of %g within half ulp" x)
        true
        (Float.abs e <= half_ulp +. 1e-15))
    [ 0.0; 0.1; -0.9; 1.2; 1.93; -1.999; 0.03125 ]

(* ------------------------------------------------------------------ *)
(* Fx_vector / MAC semantics                                           *)
(* ------------------------------------------------------------------ *)

let test_dot_simple () =
  let fmt = Qformat.make ~k:3 ~f:4 in
  let w = Fx_vector.of_floats fmt [| 1.0; -0.5; 2.0 |] in
  let x = Fx_vector.of_floats fmt [| 0.5; 0.5; 1.0 |] in
  checkf "dot" 2.25 (Fx.to_float (Fx_vector.dot w x));
  checkf "dot reference" 2.25 (Fx_vector.dot_reference w x);
  checkf "dot wide" 2.25 (Fx.to_float (Fx_vector.dot_wide w x))

let test_dot_wrap_theorem_example () =
  (* Intermediate overflow, final value representable: wrap recovers it. *)
  let fmt = Qformat.make ~k:3 ~f:0 in
  let w = Fx_vector.of_floats fmt [| 1.0; 1.0; 1.0 |] in
  let x = Fx_vector.of_floats fmt [| 3.0; 3.0; -4.0 |] in
  checkf "3+3-4 = 2 despite wrap" 2.0 (Fx.to_float (Fx_vector.dot w x))

let test_dot_empty_and_mismatch () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let a = Fx_vector.of_floats fmt [| 0.5 |] in
  let b = Fx_vector.of_floats fmt [| 0.5; 0.25 |] in
  checkb "length mismatch" true
    (match Fx_vector.dot a b with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_vector_accessors () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let v = Fx_vector.create fmt 3 in
  checki "zero length" 3 (Fx_vector.length v);
  checkf "initialised to zero" 0.0 (Fx.to_float (Fx_vector.get v 1));
  Fx_vector.set v 1 (Fx.of_float fmt 0.75);
  checkf "set/get" 0.75 (Fx.to_float (Fx_vector.get v 1));
  checkb "set rejects format mismatch" true
    (match Fx_vector.set v 0 (Fx.of_float (Qformat.make ~k:2 ~f:3) 0.5) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let doubled = Fx_vector.map (fun x -> Fx.add x x) v in
  checkf "map" 1.5 (Fx.to_float (Fx_vector.get doubled 1));
  checkb "of_fx rejects mixed" true
    (match
       Fx_vector.of_fx
         [| Fx.of_float fmt 0.5; Fx.of_float (Qformat.make ~k:3 ~f:2) 0.5 |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "of_fx rejects empty" true
    (match Fx_vector.of_fx [||] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_vector_ops () =
  let fmt = Qformat.make ~k:3 ~f:3 in
  let a = Fx_vector.of_floats fmt [| 1.0; -2.0; 0.5 |] in
  let b = Fx_vector.of_floats fmt [| 0.25; 1.0; -0.5 |] in
  Alcotest.(check (array (float 1e-12)))
    "add" [| 1.25; -1.0; 0.0 |]
    (Fx_vector.to_floats (Fx_vector.add a b));
  Alcotest.(check (array (float 1e-12)))
    "sub" [| 0.75; -3.0; 1.0 |]
    (Fx_vector.to_floats (Fx_vector.sub a b));
  checkf "linf" 2.0 (Fx_vector.linf_norm a);
  let c = Fx.of_float fmt 2.0 in
  Alcotest.(check (array (float 1e-12)))
    "scale" [| 2.0; -4.0; 1.0 |]
    (Fx_vector.to_floats (Fx_vector.scale c a))

(* ------------------------------------------------------------------ *)
(* Fx_interval                                                         *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let iv = Fx_interval.of_values fmt ~lo:(-0.6) ~hi:0.8 in
  checkf "lo snaps up" (-0.5) (Fx_interval.lo iv);
  checkf "hi snaps down" 0.75 (Fx_interval.hi iv);
  checki "count" 6 (Fx_interval.count iv);
  checkb "mem" true (Fx_interval.mem iv 0.3);
  checkb "not mem" false (Fx_interval.mem iv 0.9)

let test_interval_full () =
  let fmt = Qformat.make ~k:2 ~f:3 in
  let iv = Fx_interval.full fmt in
  checki "count = cardinality" (Qformat.cardinality fmt) (Fx_interval.count iv);
  checkf "lo" (-2.0) (Fx_interval.lo iv);
  checkf "hi" 1.875 (Fx_interval.hi iv)

let test_interval_split_covers () =
  let fmt = Qformat.make ~k:2 ~f:3 in
  let iv = Fx_interval.full fmt in
  match Fx_interval.split iv with
  | None -> Alcotest.fail "full interval must split"
  | Some (l, r) ->
      checki "partition sizes" (Fx_interval.count iv)
        (Fx_interval.count l + Fx_interval.count r);
      checkb "disjoint adjacent" true
        (Fx_interval.hi l < Fx_interval.lo r);
      checkf "no gap (one ulp apart)" (Qformat.ulp fmt)
        (Fx_interval.lo r -. Fx_interval.hi l)

let test_interval_split_singleton () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let iv = Fx_interval.of_values fmt ~lo:0.25 ~hi:0.25 in
  checkb "singleton" true (Fx_interval.is_singleton iv);
  checkb "no split" true (Fx_interval.split iv = None);
  Alcotest.(check (option (float 0.0)))
    "singleton value" (Some 0.25)
    (Fx_interval.singleton_value iv)

let test_interval_split_at () =
  let fmt = Qformat.make ~k:3 ~f:0 in
  let iv = Fx_interval.of_values fmt ~lo:(-4.0) ~hi:3.0 in
  (match Fx_interval.split ~at:2.0 iv with
  | Some (l, r) ->
      checkf "left hi at cut" 2.0 (Fx_interval.hi l);
      checkf "right lo after cut" 3.0 (Fx_interval.lo r)
  | None -> Alcotest.fail "split failed");
  (* cut point beyond hi clamps so both halves stay non-empty *)
  match Fx_interval.split ~at:99.0 iv with
  | Some (l, r) ->
      checkb "both non-empty" true
        (Fx_interval.count l >= 1 && Fx_interval.count r >= 1)
  | None -> Alcotest.fail "split failed"

let test_interval_clamp_value () =
  let fmt = Qformat.make ~k:2 ~f:2 in
  let iv = Fx_interval.of_values fmt ~lo:(-1.0) ~hi:1.0 in
  checkf "clamps above" 1.0 (Fx_interval.clamp_value iv 5.0);
  checkf "clamps below" (-1.0) (Fx_interval.clamp_value iv (-5.0));
  checkf "rounds inside" 0.5 (Fx_interval.clamp_value iv 0.55)

let test_interval_empty_rejected () =
  let fmt = Qformat.make ~k:2 ~f:1 in
  checkb "no grid point" true
    (match Fx_interval.of_values fmt ~lo:0.1 ~hi:0.4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_interval_mid_floor_division () =
  (* Midpoints must use floor division of the raw sum: truncating
     [(lo + hi) / 2] rounds toward zero, which on negative-raw intervals
     biased the midpoint a grid step up.  Q2.2, raws [-5, -2]: the
     midpoint is raw floor(-7/2) = -4, i.e. -1.0 (truncation gave -3,
     i.e. -0.75). *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let neg = Fx_interval.of_values fmt ~lo:(-1.25) ~hi:(-0.5) in
  checkf "negative mid floors" (-1.0) (Fx_interval.mid neg);
  let pos = Fx_interval.of_values fmt ~lo:0.5 ~hi:1.25 in
  checkf "positive mid unchanged" 0.75 (Fx_interval.mid pos)

let test_interval_split_balance () =
  (* A 4-point negative interval must split 2+2, exactly like its
     mirrored positive counterpart (pre-fix it split 3+1). *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let neg = Fx_interval.of_values fmt ~lo:(-1.25) ~hi:(-0.5) in
  (match Fx_interval.split neg with
  | Some (l, r) ->
      checki "negative left count" 2 (Fx_interval.count l);
      checki "negative right count" 2 (Fx_interval.count r);
      checkf "negative left hi" (-1.0) (Fx_interval.hi l);
      checkf "negative right lo" (-0.75) (Fx_interval.lo r)
  | None -> Alcotest.fail "split failed");
  let pos = Fx_interval.of_values fmt ~lo:0.5 ~hi:1.25 in
  match Fx_interval.split pos with
  | Some (l, r) ->
      checki "positive left count" 2 (Fx_interval.count l);
      checki "positive right count" 2 (Fx_interval.count r)
  | None -> Alcotest.fail "split failed"

let test_interval_clamp_extreme_magnitudes () =
  (* [clamp_value] goes through [int_of_float] on the scaled input, which
     is unspecified beyond the int range: huge reals must land exactly on
     the interval endpoints. *)
  let fmt = Qformat.make ~k:2 ~f:2 in
  let iv = Fx_interval.of_values fmt ~lo:(-1.0) ~hi:1.0 in
  checkf "huge positive clamps to hi" 1.0 (Fx_interval.clamp_value iv 1e300);
  checkf "huge negative clamps to lo" (-1.0)
    (Fx_interval.clamp_value iv (-1e300));
  checkf "+inf clamps to hi" 1.0 (Fx_interval.clamp_value iv Float.infinity);
  checkf "-inf clamps to lo" (-1.0)
    (Fx_interval.clamp_value iv Float.neg_infinity)

(* ------------------------------------------------------------------ *)
(* Format_policy                                                       *)
(* ------------------------------------------------------------------ *)

let test_policies () =
  let fmt = Format_policy.fixed_k ~k:2 8 in
  checki "fixed_k k" 2 fmt.Qformat.k;
  checki "fixed_k f" 6 fmt.Qformat.f;
  let fmt = Format_policy.fixed_f ~f:3 8 in
  checki "fixed_f k" 5 fmt.Qformat.k;
  let fmt = Format_policy.balanced 7 in
  checki "balanced k" 4 fmt.Qformat.k;
  checki "balanced f" 3 fmt.Qformat.f;
  checkb "fixed_k rejects wl <= k" true
    (match Format_policy.fixed_k ~k:4 4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let fmt_gen =
  QCheck.Gen.(
    let* k = int_range 1 6 in
    let* f = int_range 0 10 in
    return (Qformat.make ~k ~f))


let arb_fmt_value =
  QCheck.make
    ~print:(fun (fmt, x) -> Printf.sprintf "(%s, %g)" (Qformat.to_string fmt) x)
    QCheck.Gen.(
      let* fmt = fmt_gen in
      let* x = float_range (-20.0) 20.0 in
      return (fmt, x))

let prop_quantize_idempotent =
  QCheck.Test.make ~name:"of_float is idempotent on grid values" ~count:500
    arb_fmt_value (fun (fmt, x) ->
      let q = Fx.of_float ~ov:Rounding.Saturate fmt x in
      let q2 = Fx.of_float ~ov:Rounding.Saturate fmt (Fx.to_float q) in
      Fx.equal q q2)

let prop_quantize_error_half_ulp =
  QCheck.Test.make ~name:"in-range quantisation error <= ulp/2" ~count:500
    arb_fmt_value (fun (fmt, x) ->
      QCheck.assume (Qformat.in_range fmt x);
      Float.abs (Fx.quantization_error fmt x)
      <= (Qformat.ulp fmt /. 2.0) +. 1e-15)

let prop_wrap_add_congruent =
  (* Wrapped sum is congruent to the exact sum modulo 2^wl ulps. *)
  QCheck.Test.make ~name:"wrapped add congruent mod 2^wl" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* fmt = fmt_gen in
         let* a = int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt) in
         let* b = int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt) in
         return (fmt, a, b)))
    (fun (fmt, a, b) ->
      let sum = Fx.add (Fx.create fmt a) (Fx.create fmt b) in
      let m = Qformat.cardinality fmt in
      (Fx.raw sum - (a + b)) mod m = 0)

let prop_wrap_theorem =
  (* The paper's §3 claim: if the exact sum of in-range terms is in range,
     wrapping accumulation returns it exactly (integer raw arithmetic). *)
  QCheck.Test.make ~name:"intermediate wrap harmless when final fits"
    ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* fmt = fmt_gen in
         let* n = int_range 1 12 in
         let* raws =
           list_repeat n (int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt))
         in
         return (fmt, raws)))
    (fun (fmt, raws) ->
      let exact = List.fold_left ( + ) 0 raws in
      QCheck.assume
        (exact >= Qformat.min_raw fmt && exact <= Qformat.max_raw fmt);
      let acc =
        List.fold_left
          (fun acc r -> Fx.add acc (Fx.create fmt r))
          (Fx.zero fmt) raws
      in
      Fx.raw acc = exact)

let prop_dot_wide_equals_reference_when_in_range =
  QCheck.Test.make
    ~name:"dot_wide matches rounded exact dot when result fits" ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* f = int_range 1 6 in
         let fmt = Qformat.make ~k:3 ~f in
         let* n = int_range 1 8 in
         let value = float_range (-0.4) 0.4 in
         let* ws = list_repeat n value in
         let* xs = list_repeat n value in
         return (fmt, Array.of_list ws, Array.of_list xs)))
    (fun (fmt, ws, xs) ->
      let w = Fx_vector.of_floats ~ov:Rounding.Saturate fmt ws in
      let x = Fx_vector.of_floats ~ov:Rounding.Saturate fmt xs in
      let exact = Fx_vector.dot_reference w x in
      QCheck.assume (Qformat.in_range fmt exact);
      let wide = Fx.to_float (Fx_vector.dot_wide w x) in
      Float.abs (wide -. exact) <= Qformat.ulp fmt /. 2.0 +. 1e-12)

let prop_interval_split_partitions =
  QCheck.Test.make ~name:"interval split partitions the grid" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let* fmt = fmt_gen in
         let* a = int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt) in
         let* b = int_range (Qformat.min_raw fmt) (Qformat.max_raw fmt) in
         let lo = min a b and hi = max a b in
         return (Fx_interval.of_raw fmt ~lo ~hi)))
    (fun iv ->
      match Fx_interval.split iv with
      | None -> Fx_interval.is_singleton iv
      | Some (l, r) ->
          Fx_interval.count l + Fx_interval.count r = Fx_interval.count iv
          && Fx_interval.hi l < Fx_interval.lo r)

let prop_nearest_on_grid_is_nearest =
  QCheck.Test.make ~name:"nearest_on_grid minimises distance" ~count:500
    arb_fmt_value (fun (fmt, x) ->
      QCheck.assume (Qformat.in_range fmt x);
      let g = Qformat.nearest_on_grid fmt x in
      let u = Qformat.ulp fmt in
      Float.abs (g -. x) <= (u /. 2.0) +. 1e-12)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_quantize_idempotent;
      prop_quantize_error_half_ulp;
      prop_wrap_add_congruent;
      prop_wrap_theorem;
      prop_dot_wide_equals_reference_when_in_range;
      prop_interval_split_partitions;
      prop_nearest_on_grid_is_nearest;
    ]

let () =
  Alcotest.run "fixedpoint"
    [
      ( "qformat",
        [
          Alcotest.test_case "basics" `Quick test_format_basics;
          Alcotest.test_case "paper Q3.0" `Quick test_format_q30_paper;
          Alcotest.test_case "invalid formats" `Quick test_format_invalid;
          Alcotest.test_case "wrap raw" `Quick test_wrap_raw;
          Alcotest.test_case "saturate raw" `Quick test_saturate_raw;
          Alcotest.test_case "grid helpers" `Quick test_grid_helpers;
          Alcotest.test_case "values enumeration" `Quick test_values_enumeration;
          Alcotest.test_case "raw/value roundtrip" `Quick test_raw_value_roundtrip;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "shift matches float" `Quick
            test_shift_right_rounded_matches_float;
          Alcotest.test_case "nearest ties" `Quick test_shift_right_nearest_ties;
          Alcotest.test_case "overflow policies" `Quick test_overflow_policies;
          Alcotest.test_case "extreme magnitudes saturate" `Quick
            test_round_scaled_saturates;
        ] );
      ( "fx",
        [
          Alcotest.test_case "of_float nearest" `Quick test_fx_of_float_nearest;
          Alcotest.test_case "wrap vs saturate" `Quick
            test_fx_overflow_wrap_vs_saturate;
          Alcotest.test_case "paper add example" `Quick
            test_fx_add_sub_paper_example;
          Alcotest.test_case "mul" `Quick test_fx_mul;
          Alcotest.test_case "mul saturate" `Quick test_fx_mul_saturate;
          Alcotest.test_case "neg min_val" `Quick test_fx_neg_min_val;
          Alcotest.test_case "format mismatch" `Quick test_fx_format_mismatch;
          Alcotest.test_case "shifts" `Quick test_fx_shifts;
          Alcotest.test_case "quantization error bound" `Quick
            test_quantization_error_bound;
        ] );
      ( "fx_vector",
        [
          Alcotest.test_case "dot simple" `Quick test_dot_simple;
          Alcotest.test_case "dot wrap theorem" `Quick
            test_dot_wrap_theorem_example;
          Alcotest.test_case "dot mismatch" `Quick test_dot_empty_and_mismatch;
          Alcotest.test_case "vector ops" `Quick test_vector_ops;
          Alcotest.test_case "accessors" `Quick test_vector_accessors;
        ] );
      ( "fx_interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "full" `Quick test_interval_full;
          Alcotest.test_case "split covers" `Quick test_interval_split_covers;
          Alcotest.test_case "split singleton" `Quick
            test_interval_split_singleton;
          Alcotest.test_case "split at" `Quick test_interval_split_at;
          Alcotest.test_case "clamp value" `Quick test_interval_clamp_value;
          Alcotest.test_case "empty rejected" `Quick
            test_interval_empty_rejected;
          Alcotest.test_case "mid uses floor division" `Quick
            test_interval_mid_floor_division;
          Alcotest.test_case "split balance" `Quick
            test_interval_split_balance;
          Alcotest.test_case "clamp extreme magnitudes" `Quick
            test_interval_clamp_extreme_magnitudes;
        ] );
      ( "format_policy",
        [ Alcotest.test_case "policies" `Quick test_policies ] );
      ("properties", qcheck_tests);
    ]
