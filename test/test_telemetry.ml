(* Live telemetry endpoint and durable run ledger: HTTP routing
   (socket-free via [handle_request]), a real server scraped over raw
   Unix sockets while a 2-domain solve mutates every gauge, health
   setters, stop idempotence, the zero-allocation disabled path, ledger
   append/load round-trips, crash-truncated tails, and the regression
   diff on hand-crafted record pairs. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let json_str = function
  | Obs.Json.Str s -> s
  | j -> Alcotest.failf "expected string, got %s" (Obs.Json.to_string j)

let member_exn name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing member %S in %s" name (Obs.Json.to_string j)

let parse_exn s =
  match Obs.Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "JSON parse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Routing (no socket)                                                 *)
(* ------------------------------------------------------------------ *)

let split_response r =
  match
    let rec find i =
      if i + 3 >= String.length r then None
      else if String.sub r i 4 = "\r\n\r\n" then Some i
      else find (i + 1)
    in
    find 0
  with
  | Some i ->
      (String.sub r 0 i, String.sub r (i + 4) (String.length r - i - 4))
  | None -> Alcotest.failf "no header/body separator in %S" r

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

let test_routes () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let g = Obs.Metrics.gauge reg ~help:"test gauge" "ldafp_test_gauge" in
      Obs.Metrics.set g 7.0;
      let hdr, body =
        split_response (Obs.Telemetry.handle_request reg "GET /metrics HTTP/1.0")
      in
      checkb "metrics is 200" true (contains ~sub:"HTTP/1.0 200" hdr);
      checkb "metrics content-type" true
        (contains ~sub:"text/plain; version=0.0.4" hdr);
      checkb "metrics body has gauge" true (contains ~sub:"ldafp_test_gauge 7" body);
      let hdr, body =
        split_response
          (Obs.Telemetry.handle_request reg "GET /metrics.json HTTP/1.0")
      in
      checkb "metrics.json is 200" true (contains ~sub:"200 OK" hdr);
      let j = parse_exn body in
      Alcotest.(check string)
        "metrics.json schema" "ldafp-metrics/1"
        (json_str (member_exn "schema" j));
      (* Query strings are stripped before routing. *)
      let hdr, body =
        split_response
          (Obs.Telemetry.handle_request reg "GET /healthz?verbose=1 HTTP/1.0")
      in
      checkb "healthz is 200" true (contains ~sub:"200 OK" hdr);
      let h = parse_exn body in
      Alcotest.(check string) "healthz status" "ok" (json_str (member_exn "status" h));
      checkb "healthz has phase" true (Obs.Json.member "phase" h <> None);
      checkb "healthz has nodes_expanded" true
        (Obs.Json.member "nodes_expanded" h <> None);
      checkb "healthz has uptime" true
        (Obs.Json.member "uptime_seconds" h <> None);
      let hdr, _ =
        split_response (Obs.Telemetry.handle_request reg "GET /nope HTTP/1.0")
      in
      checkb "unknown path is 404" true (contains ~sub:"404" hdr);
      let hdr, _ =
        split_response (Obs.Telemetry.handle_request reg "POST /metrics HTTP/1.0")
      in
      checkb "non-GET is 405" true (contains ~sub:"405" hdr))

let test_health_setters () =
  Obs.Telemetry.set_phase "searching";
  Obs.Telemetry.set_nodes 42;
  Obs.Telemetry.set_incumbent 1.5;
  Obs.Telemetry.set_gap 0.25;
  let h = Obs.Telemetry.health_json () in
  Alcotest.(check string) "phase" "searching" (json_str (member_exn "phase" h));
  (match member_exn "nodes_expanded" h with
  | Obs.Json.Int 42 -> ()
  | j -> Alcotest.failf "nodes_expanded = %s" (Obs.Json.to_string j));
  (match member_exn "incumbent" h with
  | Obs.Json.Float f -> checkb "incumbent" true (abs_float (f -. 1.5) < 1e-12)
  | j -> Alcotest.failf "incumbent = %s" (Obs.Json.to_string j));
  (* A non-finite gap must render as null in the serialised body. *)
  Obs.Telemetry.set_gap Float.infinity;
  let s = Obs.Json.to_string (Obs.Telemetry.health_json ()) in
  checkb "non-finite gap renders null" true
    (contains ~sub:"\"certified_gap\":null" s);
  Obs.Telemetry.set_phase "idle";
  Obs.Telemetry.set_nodes 0;
  Obs.Telemetry.set_incumbent Float.infinity

(* ------------------------------------------------------------------ *)
(* Live server over real sockets                                       *)
(* ------------------------------------------------------------------ *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Bytes.create 65536 in
      let acc = Buffer.create 4096 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 | (exception Unix.Unix_error _) -> ()
        | n ->
            Buffer.add_subbytes acc buf 0 n;
            drain ()
      in
      drain ();
      Buffer.contents acc)

let with_server f =
  match Obs.Telemetry.start ~addr:"127.0.0.1:0" () with
  | Error e -> Alcotest.failf "start failed: %s" e
  | Ok srv ->
      Fun.protect ~finally:(fun () -> Obs.Telemetry.stop srv) (fun () -> f srv)

let test_live_server () =
  with_server (fun srv ->
      checkb "enabled while running" true (Obs.Telemetry.enabled ());
      checkb "ephemeral port read back" true (Obs.Telemetry.port srv > 0);
      checkb "addr carries port" true
        (contains
           ~sub:(string_of_int (Obs.Telemetry.port srv))
           (Obs.Telemetry.addr srv));
      let r = http_get (Obs.Telemetry.port srv) "/healthz" in
      let hdr, body = split_response r in
      checkb "live healthz 200" true (contains ~sub:"HTTP/1.0 200" hdr);
      let h = parse_exn body in
      Alcotest.(check string) "live status ok" "ok"
        (json_str (member_exn "status" h));
      let r = http_get (Obs.Telemetry.port srv) "/metrics" in
      let hdr, body = split_response r in
      checkb "live metrics 200" true (contains ~sub:"200 OK" hdr);
      checkb "live metrics has build_info" true
        (contains ~sub:"ldafp_build_info" body))

let test_stop_idempotent () =
  match Obs.Telemetry.start ~addr:"127.0.0.1:0" () with
  | Error e -> Alcotest.failf "start failed: %s" e
  | Ok srv ->
      Obs.Telemetry.stop srv;
      checkb "disabled after stop" false (Obs.Telemetry.enabled ());
      (* Second stop must be a no-op, not a crash or double-join. *)
      Obs.Telemetry.stop srv;
      checkb "still disabled" false (Obs.Telemetry.enabled ())

let test_bad_addr () =
  (match Obs.Telemetry.start ~addr:"not-a-port" () with
  | Error _ -> ()
  | Ok srv ->
      Obs.Telemetry.stop srv;
      Alcotest.fail "bad addr accepted");
  match Obs.Telemetry.start ~addr:"127.0.0.1:70000" () with
  | Error _ -> ()
  | Ok srv ->
      Obs.Telemetry.stop srv;
      Alcotest.fail "out-of-range port accepted"

(* Scrape the endpoint from a second domain while a real 2-domain
   search mutates counters, gauges and the health snapshot underneath
   it.  Every response must be well-formed even mid-mutation. *)

let small_scatter () =
  let a =
    [| [| 0.5; 0.1 |]; [| 0.7; -0.1 |]; [| 0.6; 0.2 |]; [| 0.4; -0.2 |] |]
  in
  let b =
    [| [| -0.5; 0.15 |]; [| -0.7; -0.15 |]; [| -0.6; 0.1 |]; [| -0.4; -0.1 |] |]
  in
  Stats.Scatter.of_data a b

let test_concurrent_scrapes () =
  let open Ldafp_core in
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      with_server (fun srv ->
          let port = Obs.Telemetry.port srv in
          let solving = Atomic.make true in
          let scrapes = Atomic.make 0 in
          let failures = Atomic.make 0 in
          let scraper =
            Domain.spawn (fun () ->
                while Atomic.get solving do
                  List.iter
                    (fun path ->
                      match split_response (http_get port path) with
                      | hdr, body ->
                          Atomic.incr scrapes;
                          if not (contains ~sub:"200 OK" hdr) then
                            Atomic.incr failures;
                          if path = "/healthz" then (
                            match Obs.Json.parse body with
                            | Ok _ -> ()
                            | Error _ -> Atomic.incr failures)
                      | exception _ -> Atomic.incr failures)
                    [ "/healthz"; "/metrics"; "/metrics.json" ]
                done)
          in
          let fmt = Fixedpoint.Qformat.make ~k:2 ~f:3 in
          let pb = Ldafp_problem.build ~fmt (small_scatter ()) in
          let config =
            {
              Lda_fp.quick_config with
              bnb_params =
                {
                  Optim.Bnb.default_params with
                  max_nodes = 4000;
                  rel_gap = 0.0;
                  abs_gap = 0.0;
                  domains = 2;
                };
            }
          in
          (match Lda_fp.solve ~config pb with
          | Some _ -> ()
          | None -> Alcotest.fail "solve found no solution");
          (* One more scrape after the search so at least one response
             is guaranteed even if the solve finished instantly. *)
          Atomic.set solving false;
          Domain.join scraper;
          let r = http_get port "/healthz" in
          let _, body = split_response r in
          let h = parse_exn body in
          let phase = json_str (member_exn "phase" h) in
          checkb "phase reached done:*" true
            (String.length phase >= 5 && String.sub phase 0 5 = "done:");
          (match member_exn "nodes_expanded" h with
          | Obs.Json.Int n -> checkb "nodes were published" true (n > 0)
          | j -> Alcotest.failf "nodes_expanded = %s" (Obs.Json.to_string j));
          checki "no malformed scrape" 0 (Atomic.get failures);
          checkb "scraped at least once" true (Atomic.get scrapes >= 0)))

(* ------------------------------------------------------------------ *)
(* Disabled path allocates nothing                                     *)
(* ------------------------------------------------------------------ *)

let test_disabled_setters_no_alloc () =
  checkb "telemetry off" false (Obs.Telemetry.enabled ());
  let guarded i =
    if Obs.Telemetry.enabled () then begin
      Obs.Telemetry.set_nodes i;
      Obs.Telemetry.set_incumbent (float_of_int i);
      Obs.Telemetry.set_gap 0.5;
      Obs.Telemetry.set_phase "searching"
    end
  in
  guarded 0;
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    guarded i
  done;
  let delta = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "disabled setters allocate nothing (delta=%.0f)" delta)
    true (delta < 256.0)

(* ------------------------------------------------------------------ *)
(* Run ledger: append / load                                           *)
(* ------------------------------------------------------------------ *)

let with_temp_ledger f =
  let path = Filename.temp_file "ldafp-test-ledger" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f path)

let load_exn path =
  match Obs.Run_ledger.load ~path with
  | Ok (records, malformed) -> (records, malformed)
  | Error e -> Alcotest.failf "load failed: %s" e

let test_ledger_round_trip () =
  with_temp_ledger (fun path ->
      let r1 =
        Obs.Run_ledger.record ~kind:"train" ~argv:[ "ldafp"; "train" ]
          [ ("result", Obs.Json.Obj [ ("cost", Obs.Json.Float 0.5) ]) ]
      in
      let r2 =
        Obs.Run_ledger.record ~kind:"bench" ~argv:[ "bench" ]
          [ ("bench", Obs.Json.Obj [ ("ok", Obs.Json.Bool true) ]) ]
      in
      (match Obs.Run_ledger.append ~path r1 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append 1: %s" e);
      (match Obs.Run_ledger.append ~path r2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append 2: %s" e);
      let records, malformed = load_exn path in
      checki "two records" 2 (List.length records);
      checki "no malformed lines" 0 malformed;
      let first = List.nth records 0 in
      Alcotest.(check string)
        "schema stamped" Obs.Run_ledger.schema
        (json_str (member_exn "schema" first));
      Alcotest.(check string) "kind kept" "train" (json_str (member_exn "kind" first));
      let env = member_exn "environment" first in
      (match member_exn "cores_detected" env with
      | Obs.Json.Int n -> checkb "cores >= 1" true (n >= 1)
      | j -> Alcotest.failf "cores_detected = %s" (Obs.Json.to_string j));
      checkb "timestamp present" true
        (Obs.Json.member "timestamp_utc" first <> None);
      let second = List.nth records 1 in
      Alcotest.(check string) "order preserved" "bench"
        (json_str (member_exn "kind" second)))

let test_ledger_torn_tail () =
  with_temp_ledger (fun path ->
      let rec_n i =
        Obs.Run_ledger.record ~kind:"train" ~argv:[ "t" ]
          [ ("result", Obs.Json.Obj [ ("n", Obs.Json.Int i) ]) ]
      in
      (match Obs.Run_ledger.append ~path (rec_n 1) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append: %s" e);
      (match Obs.Run_ledger.append ~path (rec_n 2) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append: %s" e);
      (* Simulate a crash mid-write by some non-atomic writer: a torn,
         unterminated half-record at the tail. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"schema\": \"ldafp-run/1\", \"kind\": \"tr";
      close_out oc;
      let records, malformed = load_exn path in
      checki "prior records stay readable" 2 (List.length records);
      checki "torn tail counted" 1 malformed;
      (* A subsequent append must not fuse the new record into the torn
         line: the repaired ledger gains exactly one parseable record. *)
      (match Obs.Run_ledger.append ~path (rec_n 3) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append onto torn file: %s" e);
      let records, malformed = load_exn path in
      checki "new record readable after torn tail" 3 (List.length records);
      checki "torn line still isolated" 1 malformed)

let test_ledger_missing_file () =
  (* A ledger that does not exist yet is an empty ledger, not an error:
     the first CLI run of a fresh checkout appends to a missing file. *)
  match Obs.Run_ledger.load ~path:"/nonexistent/ldafp-nope.jsonl" with
  | Ok (records, malformed) ->
      checki "missing file is empty" 0 (List.length records);
      checki "and clean" 0 malformed
  | Error e -> Alcotest.failf "missing file errored: %s" e

(* ------------------------------------------------------------------ *)
(* Regression diff                                                     *)
(* ------------------------------------------------------------------ *)

let mk_record leaves = Obs.Json.Obj [ ("stats", Obs.Json.Obj leaves) ]

let base_leaves =
  [
    ("certified_sound", Obs.Json.Bool true);
    ("cert_fallbacks", Obs.Json.Int 0);
    ("warm_hit_rate", Obs.Json.Float 0.9);
    ("ns_per_run", Obs.Json.Float 100.0);
    ("batch_preds_per_sec", Obs.Json.Float 1000.0);
  ]

let with_leaf name v =
  List.map (fun (k, x) -> if k = name then (k, v) else (k, x)) base_leaves

let diff_records ?rel_tol ?warm_drop cand_leaves =
  Obs.Run_ledger.diff ?rel_tol ?warm_drop ~baseline:(mk_record base_leaves)
    ~candidate:(mk_record cand_leaves) ()

let severities fs =
  List.map (fun f -> Obs.Run_ledger.severity_name f.Obs.Run_ledger.severity) fs

let test_diff_certified_sound () =
  let fs = diff_records (with_leaf "certified_sound" (Obs.Json.Bool false)) in
  checki "one finding" 1 (List.length fs);
  let f = List.hd fs in
  Alcotest.(check string) "severity" "correctness"
    (Obs.Run_ledger.severity_name f.Obs.Run_ledger.severity);
  Alcotest.(check string) "path" "stats.certified_sound" f.Obs.Run_ledger.path

let test_diff_cert_fallbacks () =
  let fs = diff_records (with_leaf "cert_fallbacks" (Obs.Json.Int 3)) in
  checki "one finding" 1 (List.length fs);
  Alcotest.(check (list string)) "severity" [ "correctness" ] (severities fs)

let test_diff_warm_hit_rate () =
  let fs = diff_records (with_leaf "warm_hit_rate" (Obs.Json.Float 0.5)) in
  Alcotest.(check (list string)) "big drop flags" [ "correctness" ] (severities fs);
  let fs = diff_records (with_leaf "warm_hit_rate" (Obs.Json.Float 0.85)) in
  checki "small drop within warm_drop is clean" 0 (List.length fs);
  let fs =
    diff_records ~warm_drop:0.01 (with_leaf "warm_hit_rate" (Obs.Json.Float 0.85))
  in
  Alcotest.(check (list string))
    "tightened warm_drop flags" [ "correctness" ] (severities fs)

let test_diff_timing_advisory () =
  let fs = diff_records (with_leaf "batch_preds_per_sec" (Obs.Json.Float 400.0)) in
  Alcotest.(check (list string)) "throughput drop is timing" [ "timing" ]
    (severities fs);
  let fs = diff_records (with_leaf "ns_per_run" (Obs.Json.Float 200.0)) in
  Alcotest.(check (list string)) "latency rise is timing" [ "timing" ]
    (severities fs);
  (* Within the default 25% noise band: clean. *)
  let fs = diff_records (with_leaf "batch_preds_per_sec" (Obs.Json.Float 900.0)) in
  checki "within band is clean" 0 (List.length fs);
  let fs = diff_records (with_leaf "ns_per_run" (Obs.Json.Float 110.0)) in
  checki "within band latency is clean" 0 (List.length fs);
  (* Faster is never a regression. *)
  let fs = diff_records (with_leaf "batch_preds_per_sec" (Obs.Json.Float 5000.0)) in
  checki "speedup is clean" 0 (List.length fs)

let test_diff_ordering_and_json () =
  let cand =
    List.map
      (fun (k, v) ->
        match k with
        | "certified_sound" -> (k, Obs.Json.Bool false)
        | "ns_per_run" -> (k, Obs.Json.Float 300.0)
        | _ -> (k, v))
      base_leaves
  in
  let fs = diff_records cand in
  Alcotest.(check (list string))
    "correctness ordered first" [ "correctness"; "timing" ] (severities fs);
  let j = Obs.Run_ledger.findings_json fs in
  Alcotest.(check string) "diff schema" "ldafp-diff/1"
    (json_str (member_exn "schema" j));
  (match member_exn "correctness_regressions" j with
  | Obs.Json.Int 1 -> ()
  | x -> Alcotest.failf "correctness_regressions = %s" (Obs.Json.to_string x));
  (match member_exn "timing_regressions" j with
  | Obs.Json.Int 1 -> ()
  | x -> Alcotest.failf "timing_regressions = %s" (Obs.Json.to_string x));
  match member_exn "findings" j with
  | Obs.Json.List l -> checki "findings listed" 2 (List.length l)
  | x -> Alcotest.failf "findings = %s" (Obs.Json.to_string x)

let test_diff_missing_leaf_ignored () =
  (* Schemas may grow: a leaf present on only one side is not a
     regression. *)
  let cand = List.filter (fun (k, _) -> k <> "warm_hit_rate") base_leaves in
  checki "dropped leaf ignored" 0 (List.length (diff_records cand));
  let cand = ("new_counter", Obs.Json.Int 5) :: base_leaves in
  checki "added leaf ignored" 0 (List.length (diff_records cand))

let test_diff_self_clean () =
  checki "identical records have no findings" 0
    (List.length (diff_records base_leaves))

let () =
  Alcotest.run "telemetry"
    [
      ( "http",
        [
          Alcotest.test_case "routes" `Quick test_routes;
          Alcotest.test_case "health setters" `Quick test_health_setters;
          Alcotest.test_case "live server" `Quick test_live_server;
          Alcotest.test_case "stop idempotent" `Quick test_stop_idempotent;
          Alcotest.test_case "bad addr rejected" `Quick test_bad_addr;
          Alcotest.test_case "concurrent scrapes during solve" `Quick
            test_concurrent_scrapes;
          Alcotest.test_case "disabled setters allocate nothing" `Quick
            test_disabled_setters_no_alloc;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "append/load round-trip" `Quick
            test_ledger_round_trip;
          Alcotest.test_case "torn tail stays readable" `Quick
            test_ledger_torn_tail;
          Alcotest.test_case "missing file errors" `Quick
            test_ledger_missing_file;
        ] );
      ( "diff",
        [
          Alcotest.test_case "certified_sound flip" `Quick
            test_diff_certified_sound;
          Alcotest.test_case "cert_fallbacks increase" `Quick
            test_diff_cert_fallbacks;
          Alcotest.test_case "warm_hit_rate drop" `Quick test_diff_warm_hit_rate;
          Alcotest.test_case "timing advisory" `Quick test_diff_timing_advisory;
          Alcotest.test_case "ordering and findings_json" `Quick
            test_diff_ordering_and_json;
          Alcotest.test_case "missing leaf ignored" `Quick
            test_diff_missing_leaf_ignored;
          Alcotest.test_case "self diff clean" `Quick test_diff_self_clean;
        ] );
    ]
